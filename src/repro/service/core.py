"""`BenchmarkService`: the transport-independent service core.

Everything the HTTP app does goes through this object, and tests drive
it directly — no sockets needed for the contract tests. The core is
plain thread-safe synchronous code (the asyncio front end calls it via
``asyncio.to_thread``), built from three pieces:

* the :class:`~repro.store.ResultStore` (either backend) for warm
  answers — served as the record's canonical bytes, so a service
  response is byte-identical to ``repro store export``'s line for the
  same key;
* a :class:`~repro.service.singleflight.SingleFlight` table so N
  concurrent queries for one cold point cost one simulation;
* a :class:`~repro.service.scheduler.ColdScheduler` thread pushing
  cold points through the campaign executor.

Accounting: the service counts its own request-level traffic (warm
hits, cold misses, coalesced joins) and flushes warm hits into the
store's lifetime ``hits`` counter in batches — one counter write per
:data:`HIT_FLUSH_THRESHOLD` requests instead of one per request, which
is what keeps the warm path fast enough for the traffic benchmark.
Cold points are *not* double-counted: the executor's store lookup
already records their miss, exactly as a campaign run would.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.campaign.executor import RetryPolicy
from repro.service.query import parse_point_query
from repro.service.scheduler import DEFAULT_MAX_QUEUE, ColdScheduler
from repro.service.singleflight import (
    CANCELLED,
    FAILED,
    SingleFlight,
    Ticket,
)
from repro.store import ResultStore, dump_record_text, hit_rate

#: Warm hits accumulated before one batched store-counter write.
HIT_FLUSH_THRESHOLD = 64

#: Longest a ``wait=true`` query blocks before returning the ticket.
MAX_WAIT_SECONDS = 300.0


@dataclass
class ServiceResponse:
    """One transport-independent response.

    ``payload`` is either pre-serialized canonical record bytes (warm
    hits — served verbatim so byte-identity is provable) or a dict the
    transport JSON-encodes.
    """

    status: int
    payload: Union[bytes, dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the response carries a final result."""
        return self.status == 200


class BenchmarkService:
    """Query front end over a result store and the campaign executor."""

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        policy: Optional[RetryPolicy] = None,
        jobs: int = 1,
        batch: Optional[bool] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        execution_backend=None,
    ):
        """Bind the service to a store root (either backend).

        ``execution_backend`` is handed to the cold scheduler (e.g. a
        started :class:`~repro.campaign.pool.PoolBackend`); it is
        borrowed — the caller closes it after :meth:`stop`.
        """
        self.store = (store if isinstance(store, ResultStore)
                      else ResultStore(store))
        self.flight = SingleFlight()
        self.scheduler = ColdScheduler(
            self.store, self.flight, policy=policy, jobs=jobs,
            batch=batch, max_queue=max_queue,
            execution_backend=execution_backend)
        self.started_at = time.time()
        self._counter_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "requests": 0, "warm_hits": 0, "cold_misses": 0,
            "coalesced": 0, "not_found": 0, "rejected": 0,
            "bad_requests": 0,
        }
        self._pending_hits = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the background scheduler (idempotent)."""
        self.scheduler.start()

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> None:
        """Shut down: stop the scheduler, flush counters, close handles.

        ``drain=False`` is the SIGINT path — in-flight work finishes
        its current unit (durable in the store), unstarted tickets
        resolve ``cancelled``.
        """
        self.scheduler.stop(drain=drain, timeout=timeout)
        self._flush_hits()
        self.store.close()

    # -- accounting --------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] += 1

    def _record_warm_hit(self) -> None:
        """Count one warm hit; flush to the store counter in batches."""
        flush = 0
        with self._counter_lock:
            self._counters["warm_hits"] += 1
            self._pending_hits += 1
            if self._pending_hits >= HIT_FLUSH_THRESHOLD:
                flush, self._pending_hits = self._pending_hits, 0
        if flush:
            self.store.backend.bump_counters({"hits": flush})

    def _flush_hits(self) -> None:
        """Push accumulated warm hits into the store's hit counter."""
        with self._counter_lock:
            flush, self._pending_hits = self._pending_hits, 0
        if flush:
            self.store.backend.bump_counters({"hits": flush})

    # -- queries -----------------------------------------------------------

    def query_point(self, body: object) -> ServiceResponse:
        """Resolve one ``POST /v1/points`` body.

        Warm points return 200 with the record's canonical bytes.
        Cold points are admitted to the single-flight table, enqueued
        (once), and answered 202 with the ticket — unless the body
        carries ``"wait": true`` (or a second count), in which case the
        call blocks until the ticket resolves and returns the final
        result like a warm hit.
        """
        self._count("requests")
        if not isinstance(body, dict):
            self._count("bad_requests")
            return ServiceResponse(400, {
                "error": f"request body must be a JSON object, got "
                         f"{type(body).__name__}"})
        body = dict(body)
        wait = body.pop("wait", None)
        try:
            timeout = self._wait_timeout(wait)
        except ValueError as exc:
            self._count("bad_requests")
            return ServiceResponse(400, {"error": str(exc)})
        try:
            query = parse_point_query(body)
        except ValueError as exc:
            self._count("bad_requests")
            return ServiceResponse(400, {"error": str(exc)})
        record = self.store.fetch_record(query.key)
        if record is not None:
            self._record_warm_hit()
            return ServiceResponse(
                200, dump_record_text(record).encode("utf-8"))
        ticket, created = self.flight.admit(query.key, query)
        if created:
            self._count("cold_misses")
            if not self.scheduler.submit(ticket):
                self.flight.resolve(ticket, CANCELLED,
                                    "cold-point queue is full")
                self._count("rejected")
                return ServiceResponse(503, ticket.snapshot())
        elif not ticket.resolved:
            self._count("coalesced")
        if timeout is not None and not ticket.resolved:
            ticket.wait(timeout)
        if ticket.resolved and ticket.state not in (FAILED, CANCELLED):
            record = self.store.fetch_record(query.key)
            if record is not None:
                return ServiceResponse(
                    200, dump_record_text(record).encode("utf-8"))
        return self._ticket_response(ticket)

    def lookup(self, key: str) -> ServiceResponse:
        """Resolve one ``GET /v1/points/<key>``.

        A stored record answers 200 (canonical bytes); an in-flight or
        failed ticket answers with its state; anything else is a 404 —
        the service cannot reconstruct a query from a bare key, so cold
        keys must come in through ``POST /v1/points``.
        """
        self._count("requests")
        record = self.store.fetch_record(key)
        if record is not None:
            self._record_warm_hit()
            return ServiceResponse(
                200, dump_record_text(record).encode("utf-8"))
        ticket = self.flight.get(key)
        if ticket is not None:
            return self._ticket_response(ticket)
        self._count("not_found")
        return ServiceResponse(404, {
            "error": "unknown point key; cold points must be queried "
                     "by coordinates via POST /v1/points",
            "key": key,
        })

    @staticmethod
    def _wait_timeout(wait: object) -> Optional[float]:
        """The blocking budget a ``wait`` field asks for (None = don't)."""
        if wait is None or wait is False:
            return None
        if wait is True:
            return MAX_WAIT_SECONDS
        try:
            seconds = float(wait)
        except (TypeError, ValueError):
            raise ValueError(
                f"wait must be a boolean or seconds, got {wait!r}"
            ) from None
        if seconds <= 0:
            raise ValueError(f"wait seconds must be > 0, got {seconds:g}")
        return min(seconds, MAX_WAIT_SECONDS)

    def _ticket_response(self, ticket: Ticket) -> ServiceResponse:
        """Map a ticket's state to (status, snapshot)."""
        if ticket.state == FAILED:
            return ServiceResponse(500, ticket.snapshot())
        if ticket.state == CANCELLED:
            return ServiceResponse(503, ticket.snapshot())
        return ServiceResponse(202, ticket.snapshot())

    # -- introspection -----------------------------------------------------

    def stats(self, refresh: bool = False) -> Dict[str, object]:
        """The ``/v1/stats`` document.

        The base keys are exactly ``repro store stats --json`` (same
        names, same ``hit_rate``-is-null-when-unlooked-up rule, via the
        shared :func:`repro.store.hit_rate` helper); the service's own
        request counters, queue depth and in-flight count ride along
        under ``"service"``. Store stats are served from the cached
        snapshot (``refresh=True`` re-reads disk) so a hot stats
        endpoint doesn't walk the store per request.
        """
        self._flush_hits()
        stats = self.store.stats(cached=not refresh)
        stats["hit_rate"] = hit_rate(stats)
        with self._counter_lock:
            service: Dict[str, object] = dict(self._counters)
        service.update(
            in_flight=self.flight.in_flight(),
            failed_tickets=self.flight.failed(),
            queue_depth=self.scheduler.depth,
            resolved=dict(self.scheduler.resolved),
            uptime_seconds=round(time.time() - self.started_at, 3),
            scheduler=self.scheduler.scheduler_stats(),
        )
        stats["service"] = service
        return stats

    def healthz(self) -> Dict[str, object]:
        """The liveness document (cheap: no disk reads)."""
        healthy = (self.scheduler.alive
                   and not self.store.backend.read_only)
        return {
            "status": "ok" if healthy else "degraded",
            "backend": self.store.backend.scheme,
            "root": str(self.store.root),
            "scheduler_alive": self.scheduler.alive,
            "read_only": self.store.backend.read_only,
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }
