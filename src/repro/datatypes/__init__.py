"""Hadoop ``Writable`` data-type substrate.

The paper varies the *data type* of intermediate key/value pairs
(``BytesWritable`` vs ``Text``) because the serialized on-wire size per
record — and therefore shuffle volume and per-record CPU — depends on
it. This subpackage is a faithful Python port of the relevant corner of
``org.apache.hadoop.io``:

* :mod:`repro.datatypes.varint` — ``WritableUtils.writeVInt`` codec.
* :mod:`repro.datatypes.writable` — ``Writable`` ABC plus
  ``NullWritable``, ``IntWritable``, ``LongWritable``.
* :mod:`repro.datatypes.bytes_writable` — ``BytesWritable``.
* :mod:`repro.datatypes.text` — ``Text`` (UTF-8, vint-length-prefixed).
* :mod:`repro.datatypes.serialization` — IFile-style key/value record
  framing and exact size accounting.
* :mod:`repro.datatypes.comparator` — raw-byte and deserializing
  comparators (sort order during spills and merges).
"""

from repro.datatypes.varint import (
    vint_size,
    read_vint,
    read_vlong,
    write_vint,
    write_vlong,
)
from repro.datatypes.writable import (
    IntWritable,
    LongWritable,
    NullWritable,
    Writable,
    register_writable,
    stable_hash_bytes,
    writable_class,
)
from repro.datatypes.bytes_writable import BytesWritable
from repro.datatypes.text import Text
from repro.datatypes.serialization import (
    IFileReader,
    IFileWriter,
    record_wire_size,
    serialized_size,
)
from repro.datatypes.comparator import (
    RawBytesComparator,
    WritableComparator,
    compare_bytes,
    writable_sort_key,
)

__all__ = [
    "BytesWritable",
    "IFileReader",
    "IFileWriter",
    "IntWritable",
    "LongWritable",
    "NullWritable",
    "RawBytesComparator",
    "Text",
    "Writable",
    "WritableComparator",
    "compare_bytes",
    "read_vint",
    "read_vlong",
    "record_wire_size",
    "register_writable",
    "serialized_size",
    "stable_hash_bytes",
    "vint_size",
    "writable_class",
    "writable_sort_key",
    "write_vint",
    "write_vlong",
]
