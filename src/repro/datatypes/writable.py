"""The ``Writable`` contract and the fixed-width scalar types.

A ``Writable`` serializes itself to a byte buffer and can be
reconstructed from one. The micro-benchmark suite selects the key/value
type by name (``--data-type BytesWritable|Text``), so this module also
keeps a small registry mapping type names to classes.
"""

from __future__ import annotations

import abc
import struct
from typing import Dict, Tuple, Type


def stable_hash_bytes(data: bytes) -> int:
    """Hadoop's ``WritableComparator.hashBytes``: ``h = 31*h + b`` over
    signed bytes, truncated to a signed 32-bit int.

    Unlike Python's builtin ``hash``, the result depends only on the
    byte content — never on ``PYTHONHASHSEED`` — so partition choices
    are reproducible across interpreter runs.
    """
    h = 1
    for b in data:
        if b >= 128:
            b -= 256
        h = (31 * h + b) & 0xFFFFFFFF
    return h - 0x100000000 if h >= 0x80000000 else h


class Writable(abc.ABC):
    """Abstract Hadoop serializable value."""

    __slots__ = ()

    @abc.abstractmethod
    def write(self, buf: bytearray) -> int:
        """Append the serialized form to ``buf``; return bytes written."""

    @classmethod
    @abc.abstractmethod
    def read(cls, data: bytes, offset: int = 0) -> Tuple["Writable", int]:
        """Deserialize from ``data`` at ``offset``; return (value, consumed)."""

    @abc.abstractmethod
    def serialized_size(self) -> int:
        """Exact number of bytes :meth:`write` would produce."""

    def to_bytes(self) -> bytes:
        """Serialize into a fresh byte string."""
        buf = bytearray()
        self.write(buf)
        return bytes(buf)

    def stable_hash(self) -> int:
        """Seed-independent hash, matching Hadoop's ``hashCode`` idiom.

        Defaults to hashing the serialized form; subclasses override to
        mirror their Java counterpart (e.g. ``IntWritable.hashCode()``
        is the value itself).
        """
        return stable_hash_bytes(self.to_bytes())


_REGISTRY: Dict[str, Type[Writable]] = {}


def register_writable(cls: Type[Writable]) -> Type[Writable]:
    """Class decorator: make the type selectable by name."""
    _REGISTRY[cls.__name__] = cls
    return cls


def writable_class(name: str) -> Type[Writable]:
    """Look up a registered Writable type by its class name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown Writable type {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


@register_writable
class NullWritable(Writable):
    """Singleton placeholder that serializes to zero bytes."""

    __slots__ = ()
    _instance: "NullWritable" = None  # type: ignore[assignment]

    def __new__(cls) -> "NullWritable":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def write(self, buf: bytearray) -> int:
        return 0

    @classmethod
    def read(cls, data: bytes, offset: int = 0) -> Tuple["NullWritable", int]:
        return cls(), 0

    def serialized_size(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullWritable()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullWritable)

    def __hash__(self) -> int:
        return hash(NullWritable)


@register_writable
class IntWritable(Writable):
    """32-bit big-endian signed integer."""

    __slots__ = ("value",)
    _STRUCT = struct.Struct(">i")

    def __init__(self, value: int = 0):
        if not -(2**31) <= value < 2**31:
            raise OverflowError(f"IntWritable out of range: {value}")
        self.value = int(value)

    def write(self, buf: bytearray) -> int:
        buf.extend(self._STRUCT.pack(self.value))
        return 4

    @classmethod
    def read(cls, data: bytes, offset: int = 0) -> Tuple["IntWritable", int]:
        (value,) = cls._STRUCT.unpack_from(data, offset)
        return cls(value), 4

    def serialized_size(self) -> int:
        return 4

    def stable_hash(self) -> int:
        # Java IntWritable.hashCode() is the value itself.
        return self.value

    def __repr__(self) -> str:
        return f"IntWritable({self.value})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntWritable) and self.value == other.value

    def __lt__(self, other: "IntWritable") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash((IntWritable, self.value))


@register_writable
class LongWritable(Writable):
    """64-bit big-endian signed integer."""

    __slots__ = ("value",)
    _STRUCT = struct.Struct(">q")

    def __init__(self, value: int = 0):
        if not -(2**63) <= value < 2**63:
            raise OverflowError(f"LongWritable out of range: {value}")
        self.value = int(value)

    def write(self, buf: bytearray) -> int:
        buf.extend(self._STRUCT.pack(self.value))
        return 8

    @classmethod
    def read(cls, data: bytes, offset: int = 0) -> Tuple["LongWritable", int]:
        (value,) = cls._STRUCT.unpack_from(data, offset)
        return cls(value), 8

    def serialized_size(self) -> int:
        return 8

    def stable_hash(self) -> int:
        # Java LongWritable.hashCode(): (int)(value ^ (value >>> 32)).
        u = self.value & 0xFFFFFFFFFFFFFFFF
        h = (u ^ (u >> 32)) & 0xFFFFFFFF
        return h - 0x100000000 if h >= 0x80000000 else h

    def __repr__(self) -> str:
        return f"LongWritable({self.value})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LongWritable) and self.value == other.value

    def __lt__(self, other: "LongWritable") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash((LongWritable, self.value))
