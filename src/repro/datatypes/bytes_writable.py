"""``BytesWritable``: a length-prefixed byte array.

Wire format: 4-byte big-endian length followed by the raw payload —
so an N-byte payload costs exactly N + 4 bytes on the wire. This is the
paper's default data type, chosen because binary blobs have the least
per-byte framing overhead.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.datatypes.writable import (
    Writable,
    register_writable,
    stable_hash_bytes,
)

_LEN = struct.Struct(">i")


@register_writable
class BytesWritable(Writable):
    """Binary payload with a fixed 4-byte length header."""

    __slots__ = ("payload",)

    #: Framing bytes added on top of the payload.
    HEADER_SIZE = 4

    def __init__(self, payload: bytes = b""):
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError(f"BytesWritable needs bytes, got {type(payload)!r}")
        self.payload = bytes(payload)

    def write(self, buf: bytearray) -> int:
        buf.extend(_LEN.pack(len(self.payload)))
        buf.extend(self.payload)
        return self.HEADER_SIZE + len(self.payload)

    @classmethod
    def read(cls, data: bytes, offset: int = 0) -> Tuple["BytesWritable", int]:
        (length,) = _LEN.unpack_from(data, offset)
        if length < 0:
            raise ValueError(f"negative BytesWritable length: {length}")
        start = offset + cls.HEADER_SIZE
        end = start + length
        if end > len(data):
            raise EOFError("truncated BytesWritable")
        return cls(data[start:end]), cls.HEADER_SIZE + length

    def serialized_size(self) -> int:
        return self.HEADER_SIZE + len(self.payload)

    @classmethod
    def wire_size(cls, payload_size: int) -> int:
        """Serialized size for a payload of ``payload_size`` bytes."""
        if payload_size < 0:
            raise ValueError(f"negative payload size: {payload_size}")
        return cls.HEADER_SIZE + payload_size

    def stable_hash(self) -> int:
        # Java BinaryComparable.hashCode(): hash the payload only, not
        # the length header.
        return stable_hash_bytes(self.payload)

    def __len__(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:
        preview = self.payload[:8]
        suffix = "..." if len(self.payload) > 8 else ""
        return f"BytesWritable({preview!r}{suffix}, len={len(self.payload)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BytesWritable) and self.payload == other.payload

    def __lt__(self, other: "BytesWritable") -> bool:
        return self.payload < other.payload

    def __hash__(self) -> int:
        return hash((BytesWritable, self.payload))
