"""Hadoop's variable-length integer codec (``WritableUtils``).

Values in [-112, 127] occupy one byte. Larger magnitudes are written as
a one-byte tag encoding sign and byte count, followed by the magnitude
big-endian. This is the framing ``Text`` uses for its length prefix, so
exact size accounting here feeds directly into the shuffle-volume math.
"""

from __future__ import annotations

from typing import Tuple


def write_vlong(buf: bytearray, value: int) -> int:
    """Append ``value`` in Hadoop vlong encoding; return bytes written."""
    if -112 <= value <= 127:
        buf.append(value & 0xFF)
        return 1
    tag = -112
    magnitude = value
    if value < 0:
        magnitude = ~value  # i ^= -1 in the Java source
        tag = -120
    tmp = magnitude
    nbytes = 0
    while tmp != 0:
        tmp >>= 8
        nbytes += 1
    tag -= nbytes
    buf.append(tag & 0xFF)
    for idx in range(nbytes, 0, -1):
        shift = (idx - 1) * 8
        buf.append((magnitude >> shift) & 0xFF)
    return 1 + nbytes


def write_vint(buf: bytearray, value: int) -> int:
    """Append ``value`` in Hadoop vint encoding (same wire format)."""
    if not -(2**31) <= value < 2**31:
        raise OverflowError(f"vint out of 32-bit range: {value}")
    return write_vlong(buf, value)


def _decode_tag(tag: int) -> Tuple[bool, int]:
    """Return (negative, trailing byte count) for a leading tag byte."""
    if tag >= -112:
        return False, 0
    if tag < -120:
        return True, -(tag + 120)
    return False, -(tag + 112)


def read_vlong(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a vlong at ``offset``; return (value, bytes consumed)."""
    if offset >= len(data):
        raise EOFError("vlong read past end of buffer")
    tag = data[offset]
    if tag > 127:
        tag -= 256  # interpret as signed byte
    negative, nbytes = _decode_tag(tag)
    if nbytes == 0:
        return tag, 1
    if offset + 1 + nbytes > len(data):
        raise EOFError("truncated vlong")
    magnitude = 0
    for i in range(nbytes):
        magnitude = (magnitude << 8) | data[offset + 1 + i]
    return (~magnitude if negative else magnitude), 1 + nbytes


def read_vint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a vint at ``offset``; return (value, bytes consumed)."""
    value, consumed = read_vlong(data, offset)
    if not -(2**31) <= value < 2**31:
        raise OverflowError(f"decoded vint out of 32-bit range: {value}")
    return value, consumed


def vint_size(value: int) -> int:
    """Serialized size of ``value`` in bytes, without encoding it."""
    if -112 <= value <= 127:
        return 1
    magnitude = ~value if value < 0 else value
    nbytes = 0
    while magnitude != 0:
        magnitude >>= 8
        nbytes += 1
    return 1 + nbytes
