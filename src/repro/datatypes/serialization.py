"""IFile-style key/value record framing and exact size accounting.

Hadoop stores sorted map-output runs in the IFile format: every record
is ``<vint key-length><vint value-length><key bytes><value bytes>``,
and the stream ends with the EOF marker ``(-1, -1)``. The shuffle moves
IFile segments, so *this* framing — not the bare payload size — is what
determines shuffle volume. The simulator uses :func:`record_wire_size`
for byte-exact accounting; the functional engine uses the reader/writer
for real data movement.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Type

from repro.datatypes.bytes_writable import BytesWritable
from repro.datatypes.text import Text
from repro.datatypes.varint import read_vint, vint_size, write_vint
from repro.datatypes.writable import Writable

#: IFile end-of-stream marker value.
_EOF = -1


def serialized_size(writable: Writable) -> int:
    """Exact serialized size of one Writable (no record framing)."""
    return writable.serialized_size()


def _payload_wire_size(datatype: Type[Writable], payload: int) -> int:
    if datatype is BytesWritable:
        return BytesWritable.wire_size(payload)
    if datatype is Text:
        return Text.wire_size(payload)
    raise TypeError(
        f"wire-size accounting supports BytesWritable and Text, got {datatype!r}"
    )


def record_wire_size(
    datatype: Type[Writable],
    key_payload: int,
    value_payload: int,
    value_datatype: Type[Writable] = None,
) -> int:
    """Exact IFile record size for a key/value pair.

    ``key_payload`` / ``value_payload`` are the user-visible payload
    sizes (the paper's "key size" / "value size" parameters). The
    returned size includes each type's own framing (Text vint prefix or
    BytesWritable length header) plus the IFile record header. The key
    uses ``datatype``; the value uses ``value_datatype`` when given
    (mixed-type jobs), else the key's type.
    """
    value_datatype = value_datatype if value_datatype is not None else datatype
    key_size = _payload_wire_size(datatype, key_payload)
    value_size = _payload_wire_size(value_datatype, value_payload)
    return vint_size(key_size) + vint_size(value_size) + key_size + value_size


class IFileWriter:
    """Appends framed key/value records to an in-memory buffer."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._closed = False
        self.records_written = 0

    def append(self, key: Writable, value: Writable) -> int:
        """Write one record; returns bytes appended."""
        if self._closed:
            raise ValueError("append() on a closed IFileWriter")
        key_bytes = key.to_bytes()
        value_bytes = value.to_bytes()
        n = write_vint(self._buf, len(key_bytes))
        n += write_vint(self._buf, len(value_bytes))
        self._buf.extend(key_bytes)
        self._buf.extend(value_bytes)
        self.records_written += 1
        return n + len(key_bytes) + len(value_bytes)

    def close(self) -> bytes:
        """Write the EOF marker and return the completed segment."""
        if not self._closed:
            write_vint(self._buf, _EOF)
            write_vint(self._buf, _EOF)
            self._closed = True
        return bytes(self._buf)

    @property
    def size(self) -> int:
        """Bytes buffered so far (without the EOF marker until close)."""
        return len(self._buf)


class IFileReader:
    """Iterates framed key/value records from a segment."""

    def __init__(
        self,
        data: bytes,
        key_class: Type[Writable],
        value_class: Type[Writable],
    ):
        self._data = data
        self._offset = 0
        self._key_class = key_class
        self._value_class = value_class
        self.records_read = 0

    def __iter__(self) -> Iterator[Tuple[Writable, Writable]]:
        return self

    def __next__(self) -> Tuple[Writable, Writable]:
        key_len, consumed = read_vint(self._data, self._offset)
        if key_len == _EOF:
            value_len, consumed2 = read_vint(self._data, self._offset + consumed)
            if value_len != _EOF:
                raise ValueError("corrupt IFile EOF marker")
            self._offset += consumed + consumed2
            raise StopIteration
        self._offset += consumed
        value_len, consumed = read_vint(self._data, self._offset)
        self._offset += consumed
        key, key_used = self._key_class.read(self._data, self._offset)
        if key_used != key_len:
            raise ValueError(
                f"key length mismatch: header says {key_len}, codec read {key_used}"
            )
        self._offset += key_len
        value, value_used = self._value_class.read(self._data, self._offset)
        if value_used != value_len:
            raise ValueError(
                f"value length mismatch: header says {value_len}, "
                f"codec read {value_used}"
            )
        self._offset += value_len
        self.records_read += 1
        return key, value
