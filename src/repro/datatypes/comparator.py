"""Comparators: the sort order used in spills and merges.

Hadoop sorts serialized records with *raw comparators* (memcmp over the
serialized bytes) to avoid deserialization during the sort. For both
``BytesWritable`` and ``Text``, raw-byte order over the payload equals
the deserialized order, which the property tests verify.
"""

from __future__ import annotations

from typing import Type

from repro.datatypes.bytes_writable import BytesWritable
from repro.datatypes.text import Text
from repro.datatypes.writable import Writable


def writable_sort_key(key: Writable) -> bytes:
    """The byte string Hadoop's raw comparator actually compares.

    ``BytesWritable.Comparator`` and ``Text.Comparator`` both skip the
    length framing and compare payload bytes; other Writables compare
    their full serialization.
    """
    if isinstance(key, BytesWritable):
        return key.payload
    if isinstance(key, Text):
        return key.encoded
    return key.to_bytes()


def compare_bytes(a: bytes, b: bytes) -> int:
    """memcmp semantics: negative / zero / positive like Java's compareTo."""
    if a == b:
        return 0
    return -1 if a < b else 1


class RawBytesComparator:
    """Compares serialized records lexicographically by raw bytes."""

    def compare(self, a: bytes, b: bytes) -> int:
        return compare_bytes(a, b)

    def sort_key(self, serialized: bytes) -> bytes:
        """Key usable with ``list.sort(key=...)``."""
        return serialized


class WritableComparator:
    """Compares by deserializing both operands (the slow path).

    Mirrors ``org.apache.hadoop.io.WritableComparator``'s fallback; used
    in tests to cross-check raw comparison against deserialized order.
    """

    def __init__(self, key_class: Type[Writable]):
        self.key_class = key_class

    def compare(self, a: bytes, b: bytes) -> int:
        ka, _ = self.key_class.read(a, 0)
        kb, _ = self.key_class.read(b, 0)
        if ka == kb:
            return 0
        return -1 if ka < kb else 1  # type: ignore[operator]
