"""``Text``: UTF-8 string with a vint length prefix.

Wire format: Hadoop vint of the UTF-8 byte length, then the bytes. For
the payload sizes the paper sweeps (100 B – 10 KB), the prefix is 1–2
bytes — cheaper framing than ``BytesWritable``'s fixed 4, but textual
payloads themselves are typically larger than equivalent binary ones,
which is the effect Sect. 5.2's data-type experiment probes.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.datatypes.varint import read_vint, vint_size, write_vint
from repro.datatypes.writable import (
    Writable,
    register_writable,
    stable_hash_bytes,
)


@register_writable
class Text(Writable):
    """UTF-8 encoded string with variable-length framing."""

    __slots__ = ("_encoded",)

    def __init__(self, value: Union[str, bytes] = ""):
        if isinstance(value, str):
            self._encoded = value.encode("utf-8")
        elif isinstance(value, (bytes, bytearray, memoryview)):
            encoded = bytes(value)
            encoded.decode("utf-8")  # validate; raises UnicodeDecodeError
            self._encoded = encoded
        else:
            raise TypeError(f"Text needs str or bytes, got {type(value)!r}")

    @property
    def encoded(self) -> bytes:
        """The UTF-8 payload (without the length prefix)."""
        return self._encoded

    def __str__(self) -> str:
        return self._encoded.decode("utf-8")

    def write(self, buf: bytearray) -> int:
        n = write_vint(buf, len(self._encoded))
        buf.extend(self._encoded)
        return n + len(self._encoded)

    @classmethod
    def read(cls, data: bytes, offset: int = 0) -> Tuple["Text", int]:
        length, consumed = read_vint(data, offset)
        if length < 0:
            raise ValueError(f"negative Text length: {length}")
        start = offset + consumed
        end = start + length
        if end > len(data):
            raise EOFError("truncated Text")
        return cls(data[start:end]), consumed + length

    def serialized_size(self) -> int:
        return vint_size(len(self._encoded)) + len(self._encoded)

    @classmethod
    def wire_size(cls, payload_size: int) -> int:
        """Serialized size for a ``payload_size``-byte UTF-8 payload."""
        if payload_size < 0:
            raise ValueError(f"negative payload size: {payload_size}")
        return vint_size(payload_size) + payload_size

    def stable_hash(self) -> int:
        # Java Text extends BinaryComparable: hash the UTF-8 payload
        # without the vint prefix.
        return stable_hash_bytes(self._encoded)

    def __len__(self) -> int:
        return len(self._encoded)

    def __repr__(self) -> str:
        preview = self._encoded[:16].decode("utf-8", errors="replace")
        suffix = "..." if len(self._encoded) > 16 else ""
        return f"Text({preview!r}{suffix})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Text) and self._encoded == other._encoded

    def __lt__(self, other: "Text") -> bool:
        # Hadoop Text sorts by raw UTF-8 bytes.
        return self._encoded < other._encoded

    def __hash__(self) -> int:
        return hash((Text, self._encoded))
