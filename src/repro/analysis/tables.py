"""ASCII table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a header rule.

    Numeric cells are right-aligned; everything else left-aligned.
    """
    rendered: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(cell: str, i: int, original: object) -> str:
        if isinstance(original, (int, float)):
            return cell.rjust(widths[i])
        return cell.ljust(widths[i])

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row, original in zip(rendered, rows):
        lines.append(
            "  ".join(align(c, i, original[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)
