"""Small statistics helpers used by the harness and reports."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * pct / 100
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def improvement_pct(baseline: float, improved: float) -> float:
    """Percent reduction relative to ``baseline`` (positive = faster).

    This is the paper's reporting convention: "job execution time
    decreases around 17%" means ``improvement_pct(t_1gige, t_10gige)``
    is ~17.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - improved) / baseline


def speedup(baseline: float, improved: float) -> float:
    """Classic speedup factor baseline/improved."""
    if improved <= 0:
        raise ValueError(f"improved time must be positive, got {improved}")
    return baseline / improved
