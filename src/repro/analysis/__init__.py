"""Result analysis: statistics, tables, exports, and the Experiment
Book generator (:mod:`repro.analysis.book`)."""

from repro.analysis.book import build_book, git_describe
from repro.analysis.charts import bar_chart, line_chart, sweep_chart
from repro.analysis.export import (
    chrome_trace_json,
    parse_csv_floats,
    results_to_csv,
    sweep_to_csv,
    trace_to_chrome,
    write_chrome_trace,
    write_csv,
)
from repro.analysis.stats import (
    geometric_mean,
    improvement_pct,
    mean,
    median,
    percentile,
    speedup,
)
from repro.analysis.tables import format_cell, format_table

__all__ = [
    "bar_chart",
    "build_book",
    "chrome_trace_json",
    "git_describe",
    "format_cell",
    "line_chart",
    "sweep_chart",
    "format_table",
    "geometric_mean",
    "improvement_pct",
    "mean",
    "median",
    "parse_csv_floats",
    "percentile",
    "results_to_csv",
    "speedup",
    "sweep_to_csv",
    "trace_to_chrome",
    "write_chrome_trace",
    "write_csv",
]
