"""Result export: CSV serialization of runs and sweeps, trace JSON.

The real suite's output is scraped into spreadsheets; this module
provides the equivalent: flat CSV rows for single results and sweep
grids, suitable for plotting the paper's figures externally — plus a
Chrome ``trace_event`` exporter that turns a
:class:`~repro.sim.trace.Tracer` into JSON loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Column order for single-job summary rows.
RESULT_FIELDS = (
    "benchmark", "network", "version", "slaves", "maps", "reduces",
    "data_type", "pair_size", "shuffle_gb", "execution_time_s",
)


def results_to_csv(results: Iterable["SimJobResult"]) -> str:  # noqa: F821
    """Serialize job results (their ``summary()`` rows) as CSV text."""
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=RESULT_FIELDS)
    writer.writeheader()
    for result in results:
        summary = result.summary()
        writer.writerow({field: summary[field] for field in RESULT_FIELDS})
    return out.getvalue()


def sweep_to_csv(sweep: "SweepResult") -> str:  # noqa: F821
    """Serialize a sweep as a wide CSV: one row per shuffle size, one
    column per network (the layout the paper's figures plot)."""
    networks = sweep.networks()
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["shuffle_gb"] + networks)
    for size in sorted(sweep.sizes()):
        writer.writerow(
            [size] + [round(sweep.time(net, size), 3) for net in networks]
        )
    return out.getvalue()


def write_csv(path: str, text: str) -> None:
    """Write CSV text to a file (tiny helper for CLI/--csv)."""
    with open(path, "w", newline="") as handle:
        handle.write(text)


def trace_to_chrome(tracer: "Tracer") -> Dict[str, Any]:  # noqa: F821
    """Convert a trace to the Chrome ``trace_event`` object format.

    Tracks (node names, ``net``, ``job``) map to Chrome *processes* and
    lanes (``map3``, ``reduce1``...) to *threads*; ``M`` metadata events
    name them so the viewer shows readable rows. Spans become ``X``
    (complete) events, instants become ``i`` events. Chrome timestamps
    are microseconds; simulated seconds are scaled accordingly.
    """
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    for ev in tracer.events:
        pid = pids.get(ev.track)
        if pid is None:
            pid = pids[ev.track] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": ev.track},
            })
        key = (ev.track, ev.lane)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = sum(1 for k in tids if k[0] == ev.track) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": ev.lane},
            })
        record: Dict[str, Any] = {
            "name": ev.name,
            "cat": ev.cat,
            "pid": pid,
            "tid": tid,
            "ts": ev.start * 1e6,
        }
        if ev.is_instant:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        else:
            record["ph"] = "X"
            record["dur"] = ev.duration * 1e6
        if ev.args:
            record["args"] = dict(ev.args)
        events.append(record)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(tracer: "Tracer") -> str:  # noqa: F821
    """Chrome ``trace_event`` JSON text for a recorded trace."""
    return json.dumps(trace_to_chrome(tracer), indent=1)


def write_chrome_trace(path: str, tracer: "Tracer") -> None:  # noqa: F821
    """Write a trace as Chrome JSON, viewable in Perfetto."""
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(tracer))


def parse_csv_floats(text: str) -> List[List[Optional[float]]]:
    """Parse CSV text back into rows of floats (None for non-numeric);
    used by tests to round-trip exports."""
    rows: List[List[Optional[float]]] = []
    for record in csv.reader(io.StringIO(text)):
        row: List[Optional[float]] = []
        for cell in record:
            try:
                row.append(float(cell))
            except ValueError:
                row.append(None)
        rows.append(row)
    return rows
