"""Result export: CSV serialization of runs and sweeps.

The real suite's output is scraped into spreadsheets; this module
provides the equivalent: flat CSV rows for single results and sweep
grids, suitable for plotting the paper's figures externally.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Optional, Sequence

#: Column order for single-job summary rows.
RESULT_FIELDS = (
    "benchmark", "network", "version", "slaves", "maps", "reduces",
    "data_type", "pair_size", "shuffle_gb", "execution_time_s",
)


def results_to_csv(results: Iterable["SimJobResult"]) -> str:  # noqa: F821
    """Serialize job results (their ``summary()`` rows) as CSV text."""
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=RESULT_FIELDS)
    writer.writeheader()
    for result in results:
        summary = result.summary()
        writer.writerow({field: summary[field] for field in RESULT_FIELDS})
    return out.getvalue()


def sweep_to_csv(sweep: "SweepResult") -> str:  # noqa: F821
    """Serialize a sweep as a wide CSV: one row per shuffle size, one
    column per network (the layout the paper's figures plot)."""
    networks = sweep.networks()
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["shuffle_gb"] + networks)
    for size in sorted(sweep.sizes()):
        writer.writerow(
            [size] + [round(sweep.time(net, size), 3) for net in networks]
        )
    return out.getvalue()


def write_csv(path: str, text: str) -> None:
    """Write CSV text to a file (tiny helper for CLI/--csv)."""
    with open(path, "w", newline="") as handle:
        handle.write(text)


def parse_csv_floats(text: str) -> List[List[Optional[float]]]:
    """Parse CSV text back into rows of floats (None for non-numeric);
    used by tests to round-trip exports."""
    rows: List[List[Optional[float]]] = []
    for record in csv.reader(io.StringIO(text)):
        row: List[Optional[float]] = []
        for cell in record:
            try:
                row.append(float(cell))
            except ValueError:
                row.append(None)
        rows.append(row)
    return rows
