"""Terminal charts: render benchmark series without a plotting stack.

The benches print tables; the examples additionally render the paper's
figures as ASCII line/bar charts so trends are visible straight from a
shell.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Glyphs cycled across series in a line chart.
SERIES_GLYPHS = "ox+*#@"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(no data)"
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(
            f"{str(label).ljust(label_width)} | {bar} {value:.1f}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    ``series`` maps a name to ``(xs, ys)``. Each series is drawn with
    its own glyph; a legend follows the plot.
    """
    if not series:
        return "(no data)"
    all_x = [x for xs, _ys in series.values() for x in xs]
    all_y = [y for _xs, ys in series.values() for y in ys]
    if not all_x:
        return "(no data)"
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[idx % len(SERIES_GLYPHS)]
        for x, y in zip(xs, ys):
            col = round((x - x_min) / x_span * (width - 1))
            row = round((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if y_label:
        lines.append(y_label)
    top_axis = f"{y_max:.0f}"
    bottom_axis = f"{y_min:.0f}"
    margin = max(len(top_axis), len(bottom_axis))
    for i, row in enumerate(grid):
        prefix = top_axis if i == 0 else (
            bottom_axis if i == height - 1 else ""
        )
        lines.append(f"{prefix.rjust(margin)} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_min:g}".ljust(width - 8) + f"{x_max:g}".rjust(8)
    lines.append(" " * (margin + 2) + x_axis + (f"  {x_label}" if x_label else ""))
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)


def sweep_chart(sweep, width: int = 60, height: int = 14) -> str:
    """Render a :class:`~repro.core.suite.SweepResult` as a line chart."""
    series = {net: sweep.series(net) for net in sweep.networks()}
    return line_chart(series, width=width, height=height,
                      x_label="shuffle GB", y_label="job time (s)")
