"""The Experiment Book: a Markdown site generated from store contents.

``repro book out/`` renders every campaign recorded in a
:class:`~repro.store.ResultStore` into a cross-linked set of Markdown
pages — one index plus one page per campaign — built **from store
contents alone**: the runner tags each record with its campaign and
point coordinates (:func:`repro.campaign.runner.run_campaign`), and
this module regroups those tags into the paper-figure tables.

Each campaign page carries:

* the size × network execution-time grid per variant (the figure's
  table), with a percent-improvement summary against the campaign's
  baseline network;
* a per-phase breakdown (map / spill-merge / shuffle / merge / reduce
  task-seconds per network) at the largest swept size;
* a resilience section when the campaign ran under a fault plan
  (crash counts, wasted work, recovery time per point);
* provenance: the store key of every point, the store schema version,
  and ``git describe`` of the generating tree.

Unlike hand-written docs, the book cannot drift from the data: it is
re-rendered from the records every time, and stale records are already
invisible (wrong-schema records never load).
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats import improvement_pct, mean
from repro.hadoop.result import PHASES
from repro.net.interconnect import INTERCONNECTS
from repro.store import SCHEMA_VERSION, ResultStore, StoredResult

#: Network column order: the interconnect catalog's (slow → fast).
_NETWORK_RANK = {name: i for i, name in enumerate(INTERCONNECTS)}


def git_describe() -> str:
    """``git describe`` of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavored Markdown pipe table."""
    def cell(value: object) -> str:
        """Render one cell (floats to one decimal place)."""
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)


class _Point:
    """One store record seen through one campaign's tag."""

    __slots__ = ("key", "meta", "result", "provenance")

    def __init__(self, key: str, meta: dict, result: StoredResult,
                 provenance: dict):
        """Bind a store key, its campaign tag and the decoded result."""
        self.key = key
        self.meta = meta
        self.result = result
        self.provenance = provenance

    @property
    def variant(self) -> str:
        """The variant label the point was tagged with ("" if none)."""
        return str(self.meta.get("variant", ""))

    @property
    def shuffle_gb(self) -> float:
        """Shuffle volume in GB, from the campaign tag."""
        return float(self.meta.get("shuffle_gb", 0.0))

    @property
    def network(self) -> str:
        """Canonical interconnect name of the stored result."""
        return self.result.interconnect_name

    @property
    def trial(self) -> int:
        """Zero-based trial index from the campaign tag."""
        return int(self.meta.get("trial", 0))


def collect_campaigns(store: ResultStore) -> Dict[str, List[_Point]]:
    """Group the store's records by campaign tag (tag order preserved)."""
    campaigns: Dict[str, List[_Point]] = {}
    for key, record in store.records():
        tags = record.get("tags") or {}
        if not tags:
            continue
        try:
            result = StoredResult.from_dict(record["result"])
        except (KeyError, ValueError):
            continue
        for name, meta in tags.items():
            campaigns.setdefault(name, []).append(
                _Point(key, meta or {}, result,
                       record.get("provenance") or {})
            )
    return campaigns


def _network_order(points: Sequence[_Point]) -> List[str]:
    names = {p.network for p in points}
    return sorted(names, key=lambda n: (_NETWORK_RANK.get(n, 99), n))


def _grid_table(points: Sequence[_Point], networks: Sequence[str]) -> str:
    """The size × network execution-time table (mean over trials)."""
    sizes = sorted({p.shuffle_gb for p in points})
    rows = []
    for size in sizes:
        row: List[object] = [f"{size:g}"]
        for network in networks:
            times = [p.result.execution_time for p in points
                     if p.shuffle_gb == size and p.network == network]
            row.append(mean(times) if times else "—")
        rows.append(row)
    return _md_table(["Shuffle (GB)"] + list(networks), rows)


def _improvement_lines(points: Sequence[_Point], networks: Sequence[str],
                       baseline: str) -> List[str]:
    """Mean percent improvement of each network over the baseline."""
    sizes = sorted({p.shuffle_gb for p in points})

    def time_at(network: str, size: float) -> Optional[float]:
        """Mean execution time at one grid point (None if absent)."""
        times = [p.result.execution_time for p in points
                 if p.shuffle_gb == size and p.network == network]
        return mean(times) if times else None

    out = []
    for network in networks:
        if network == baseline:
            continue
        pcts = []
        for size in sizes:
            base, new = time_at(baseline, size), time_at(network, size)
            if base is not None and new is not None:
                pcts.append(improvement_pct(base, new))
        if pcts:
            out.append(f"- **{network}** vs {baseline}: "
                       f"{mean(pcts):+.1f}% mean job-time improvement")
    return out


def _phase_section(points: Sequence[_Point], networks: Sequence[str]) -> List[str]:
    """Per-phase task-seconds per network, at the largest swept size."""
    if not points:
        return []
    top = max(p.shuffle_gb for p in points)
    rows = []
    for network in networks:
        candidates = [p for p in points
                      if p.shuffle_gb == top and p.network == network
                      and p.trial == 0]
        if not candidates:
            continue
        totals = candidates[0].result.phase_breakdown().totals()
        rows.append([network] + [totals[phase] for phase in PHASES])
    if not rows:
        return []
    return [
        f"### Phase breakdown @ {top:g} GB",
        "",
        "Task-seconds per phase (tasks overlap, so columns sum to "
        "task-time, not wall time).",
        "",
        _md_table(["Network"] + [p.replace("_", "-") for p in PHASES], rows),
    ]


def _resilience_section(points: Sequence[_Point]) -> List[str]:
    """Fault-injection outcomes, when any point carries a report."""
    faulty = [p for p in points if p.result.resilience]
    if not faulty:
        return []
    columns = ["node_crashes", "attempts_killed", "task_failures",
               "fetch_retries", "wasted_task_seconds",
               "total_recovery_seconds"]
    rows = []
    for p in sorted(faulty, key=lambda p: (p.variant, p.shuffle_gb,
                                           _NETWORK_RANK.get(p.network, 99),
                                           p.trial)):
        res = p.result.resilience or {}
        label = f"{p.shuffle_gb:g} GB {p.network}"
        if p.variant:
            label = f"{p.variant} {label}"
        rows.append([label] + [res.get(c, "—") for c in columns])
    return [
        "### Resilience under fault injection",
        "",
        "This campaign ran with a fault plan; the store records what "
        "the injected faults cost each point.",
        "",
        _md_table(["Point"] + [c.replace("_", " ") for c in columns], rows),
    ]


def _provenance_section(points: Sequence[_Point], describe: str) -> List[str]:
    rows = []
    for p in sorted(points, key=lambda p: (p.variant, p.shuffle_gb,
                                           _NETWORK_RANK.get(p.network, 99),
                                           p.trial)):
        label = f"{p.shuffle_gb:g} GB {p.network}"
        if p.variant:
            label = f"{p.variant} {label}"
        if p.trial:
            label += f" trial{p.trial}"
        seed = ((p.provenance.get("config") or {}).get("seed", "?"))
        rows.append([label, f"`{p.key[:16]}…`", seed])
    return [
        "### Provenance",
        "",
        f"Store schema v{SCHEMA_VERSION}, generated at `{describe}`. "
        "Each point is content-addressed: the key is the SHA-256 of the "
        "full (config, cluster, jobconf, cost model, fault plan, schema) "
        "document kept in the record's provenance block.",
        "",
        _md_table(["Point", "Store key", "Seed"], rows),
    ]


def _campaign_page(name: str, points: List[_Point], describe: str) -> str:
    meta = points[0].meta
    figure = str(meta.get("figure") or "")
    title = str(meta.get("title") or "")
    benchmark = str(meta.get("benchmark") or "")
    baseline_alias = str(meta.get("baseline") or "")
    networks = _network_order(points)
    # The tag's baseline may be an alias; match it to a canonical column.
    baseline = networks[0]
    if baseline_alias:
        from repro.net.interconnect import get_interconnect

        try:
            baseline = get_interconnect(baseline_alias).name
        except KeyError:
            pass

    heading = figure or name
    if title:
        heading += f" — {title}"
    lines = [f"# {heading}", ""]
    first = points[0].result
    lines.append(
        f"Campaign **`{name}`**: {benchmark or first.summary()['benchmark']} "
        f"on {first.cluster_name} ({first.num_slaves} slaves, "
        f"{first.runtime}), {len(points)} stored points."
    )
    lines.append("")

    variants: Dict[str, List[_Point]] = {}
    for p in points:
        variants.setdefault(p.variant, []).append(p)
    for variant, vpoints in variants.items():
        if variant:
            lines += [f"## Variant: {variant}", ""]
        lines += ["Job execution time (s):", "",
                  _grid_table(vpoints, networks), ""]
        improvements = _improvement_lines(vpoints, networks, baseline)
        if improvements:
            lines += improvements + [""]

    lines += _phase_section(points, networks)
    lines.append("")
    lines += _resilience_section(points)
    lines.append("")
    lines += _provenance_section(points, describe)
    lines += ["", "[← back to the index](index.md)", ""]
    return "\n".join(lines)


def build_book(
    store: ResultStore,
    out_dir: Union[str, Path],
    campaigns: Optional[Sequence[str]] = None,
    title: str = "Experiment Book",
) -> List[Path]:
    """Render the Experiment Book; returns the written page paths.

    ``campaigns`` restricts the book to a subset of campaign names
    (default: everything tagged in the store). Raises
    :class:`ValueError` when the store holds no tagged campaigns to
    render — an empty book is almost always a wrong ``--store``.
    """
    grouped = collect_campaigns(store)
    if campaigns is not None:
        missing = [c for c in campaigns if c not in grouped]
        if missing:
            raise ValueError(
                f"store {store.root} has no campaign(s) {missing}; "
                f"tagged campaigns: {sorted(grouped) or 'none'}"
            )
        grouped = {name: grouped[name] for name in campaigns}
    if not grouped:
        raise ValueError(
            f"store {store.root} holds no tagged campaign records; "
            "run one first (repro campaign run SPEC --store DIR)"
        )

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    describe = git_describe()
    written: List[Path] = []

    index = [f"# {title}", ""]
    index.append(
        f"Generated from the result store at `{store.root}` "
        f"(schema v{SCHEMA_VERSION}, {store.stats()['records']} records) "
        f"at `{describe}`. Every table below is rendered from stored, "
        "content-addressed results — re-run the campaigns and re-render "
        "to update; nothing here is hand-maintained."
    )
    index += ["", "| Campaign | Figure | Benchmark | Points |",
              "|---|---|---|---|"]
    for name in sorted(grouped):
        points = grouped[name]
        meta = points[0].meta
        page = out / f"{name}.md"
        page.write_text(_campaign_page(name, points, describe))
        written.append(page)
        index.append(
            f"| [{name}]({name}.md) | {meta.get('figure') or '—'} "
            f"| {meta.get('benchmark') or '—'} | {len(points)} |"
        )
    index += ["",
              "See `docs/BENCHMARKS.md` in the repository for how each "
              "campaign maps to the paper's figures and how to "
              "regenerate this book.", ""]
    index_path = out / "index.md"
    index_path.write_text("\n".join(index))
    written.insert(0, index_path)
    return written
