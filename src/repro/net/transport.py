"""Shuffle transport models.

Stock Hadoop shuffles map output over HTTP: the reduce-side fetcher
opens a connection to the map host's shuffle servlet, which reads the
requested partition from the map-output file and streams it back over
TCP. MRoIB (the Sect. 6 case study) replaces this with RDMA verbs:
the reducer posts a work request, the server registers the region, the
HCA moves the bytes with no per-byte CPU, and the SEDA-style pipeline
overlaps fetching with merging.

The :class:`TransportModel` captures the differences the job time is
sensitive to; the shuffle engine (:mod:`repro.hadoop.shuffle`) consults
it per fetch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.interconnect import InterconnectSpec


@dataclass(frozen=True)
class TransportModel:
    """Per-fetch behaviour of a shuffle transport."""

    name: str
    #: Fixed per-fetch service time (request parse/dispatch), seconds.
    fetch_setup: float
    #: Server-side disk read required before streaming (True for the
    #: HTTP servlet, which reads the map-output file; MRoIB keeps hot
    #: segments cached and pre-registered).
    reads_map_output_from_disk: bool
    #: Fraction of fetched bytes whose *incremental* merge work can
    #: overlap with subsequent fetches. The stock MergeManager partially
    #: overlaps (in-memory merges run behind fetchers); MRoIB's SEDA
    #: pipeline overlaps fully.
    merge_overlap: float
    #: Whether the reduce-side *final* merge streams inside the pipeline
    #: (MRoIB/HOMR) instead of serializing after the last fetch (stock).
    pipelined_final_merge: bool = False
    #: Whether segments land in pre-registered buffers and are merged
    #: without intermediate copies (RDMA). Cuts the per-byte CPU of the
    #: reduce-side merges.
    zero_copy: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.merge_overlap <= 1.0:
            raise ValueError(f"{self.name}: merge_overlap must be in [0, 1]")
        if self.fetch_setup < 0:
            raise ValueError(f"{self.name}: fetch_setup must be >= 0")


#: The stock Hadoop HTTP shuffle (MRv1 servlet / MRv2 ShuffleHandler).
HTTP_SHUFFLE_OVERLAP = 0.55

#: MRoIB: fully pipelined, zero-copy.
RDMA_SHUFFLE_OVERLAP = 1.0


def transport_for(interconnect: InterconnectSpec) -> TransportModel:
    """Pick the shuffle transport a given interconnect implies.

    TCP-reachable interconnects (1/10 GigE, IPoIB) use the HTTP
    shuffle; RDMA-capable ones use the MRoIB engine.
    """
    if interconnect.rdma:
        return TransportModel(
            name=f"rdma-shuffle/{interconnect.name}",
            fetch_setup=interconnect.fetch_setup,
            reads_map_output_from_disk=False,
            merge_overlap=RDMA_SHUFFLE_OVERLAP,
            pipelined_final_merge=True,
            zero_copy=True,
        )
    return TransportModel(
        name=f"http-shuffle/{interconnect.name}",
        fetch_setup=interconnect.fetch_setup,
        reads_map_output_from_disk=True,
        merge_overlap=HTTP_SHUFFLE_OVERLAP,
        pipelined_final_merge=False,
    )
