"""Network substrate: interconnect models and a flow-level fabric.

The paper evaluates Hadoop MapReduce over 1 GigE, 10 GigE, IPoIB QDR
(32 Gbps), IPoIB FDR (56 Gbps) and native-InfiniBand RDMA (56 Gbps). We
have no such hardware; this subpackage substitutes *flow-level network
simulation*:

* :mod:`repro.net.interconnect` — a catalog of interconnect/protocol
  models. Each entry captures the quantities the paper's results depend
  on: effective application-level bandwidth, one-way latency, per-fetch
  setup cost, and per-byte protocol CPU cost.
* :mod:`repro.net.fabric` — a max-min-fair bandwidth-sharing fabric: the
  all-to-all shuffle creates many concurrent (mapper-node -> reducer-node)
  flows, and each NIC's ingress/egress capacity is divided among them by
  progressive filling (water-filling), exactly as TCP-fair sharing does
  on a non-blocking switch.
* :mod:`repro.net.transport` — shuffle transport models (HTTP-over-TCP
  for the stock framework, RDMA verbs for the MRoIB case study).
"""

from repro.net.interconnect import (
    INTERCONNECTS,
    IPOIB_FDR,
    IPOIB_QDR,
    ONE_GIGE,
    RDMA_FDR,
    TEN_GIGE,
    InterconnectSpec,
    get_interconnect,
)
from repro.net.fabric import FabricNode, Flow, NetworkFabric, compute_max_min
from repro.net.transport import TransportModel, transport_for

__all__ = [
    "FabricNode",
    "Flow",
    "INTERCONNECTS",
    "IPOIB_FDR",
    "IPOIB_QDR",
    "InterconnectSpec",
    "NetworkFabric",
    "ONE_GIGE",
    "RDMA_FDR",
    "TEN_GIGE",
    "TransportModel",
    "compute_max_min",
    "get_interconnect",
    "transport_for",
]
