"""Flow-level network fabric with max-min fair bandwidth sharing.

The MapReduce shuffle creates an all-to-all traffic pattern: every
reduce task fetches a segment from every map task's host. On a cluster
with a non-blocking switch (both testbeds in the paper use one), the
contended resources are the per-node NIC ingress and egress capacities.
TCP's AIMD converges to an allocation close to *max-min fairness* over
those capacities, so the fabric computes exact max-min rates by
progressive filling whenever the set of active flows changes, and
integrates transferred bytes between change points.

Node-local transfers (a reducer fetching from a mapper on the same
host) do not touch the NIC; they ride a per-node loopback link with its
own (memory-speed) capacity, which is why local fetches are equally
fast on every interconnect — as in real Hadoop.

Rate allocation is the simulation's hot loop (each job re-solves it on
every flow arrival/departure), so the fabric keeps three fast paths,
all bit-identical to the reference solver (see :mod:`repro.net.solver`):

* each flow's traversed-link tuple is computed once at creation and
  cached on the flow;
* per-link active-flow counts are maintained incrementally, and when a
  change point only touches links private to the changed flows (e.g. a
  loopback fetch on an otherwise-idle host), the solver run is skipped
  entirely — surviving flows provably keep their rates;
* the full solve groups flows into link-tuple equivalence classes
  (:func:`~repro.net.solver.solve_max_min_grouped`).

``NetworkFabric(..., solver="reference")`` disables all three and runs
the original O(flows^2)-ish recompute; the equivalence tests simulate
identical workloads under both modes and assert bit-equal timings.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Optional, Tuple

from repro.net.interconnect import InterconnectSpec
from repro.net.solver import LinkClassTable, compute_max_min, solve_max_min_grouped
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.monitor import ByteCounter, UtilizationTracker
from repro.sim.trace import CAT_NET

__all__ = [
    "DEFAULT_LOOPBACK_BANDWIDTH",
    "FabricLinkTable",
    "FabricNode",
    "Flow",
    "NetworkFabric",
    "clear_link_table_cache",
    "compute_max_min",
    "link_table_for",
]

_EPS = 1e-6

#: Default loopback (same-host) transfer bandwidth, bytes/s. Memory-copy
#: speed through the local socket stack; identical for all interconnects.
DEFAULT_LOOPBACK_BANDWIDTH = 3.0e9


class Flow:
    """One in-flight transfer between two fabric nodes.

    ``done`` succeeds (with the flow as value) when the last byte has
    been delivered. ``rate`` is the current max-min share in bytes/s.
    ``links`` is the tuple of fabric links the flow traverses, computed
    once at creation; ``wire`` is False for node-local (loopback) flows
    that never touch a NIC.

    Flow ids are assigned per fabric (not per process), so event names
    and id-keyed debugging output are identical from run to run no
    matter what simulations ran earlier in the process.
    """

    __slots__ = (
        "id", "fabric", "src", "dst", "nbytes", "remaining", "rate",
        "started_at", "finished_at", "done", "links", "wire", "aborted",
    )

    def __init__(self, fabric: "NetworkFabric", src: str, dst: str, nbytes: float):
        self.id = next(fabric._flow_ids)
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.aborted = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done: Event = fabric.sim.event(name=f"flow#{self.id}:{src}->{dst}")
        self.links = fabric._links_of(self)
        self.wire = src != dst

    @property
    def is_local(self) -> bool:
        return self.src == self.dst

    def __repr__(self) -> str:
        return (
            f"<Flow#{self.id} {self.src}->{self.dst} "
            f"{self.remaining:.0f}/{self.nbytes:.0f}B @ {self.rate:.0f}B/s>"
        )


class _LiveDirectionalCounter(ByteCounter):
    """Byte counter including in-flight progress since the last change point."""

    __slots__ = ("_node", "_direction")

    def __init__(self, node: "FabricNode", direction: str):
        super().__init__()
        self._node = node
        self._direction = direction

    @property
    def total(self) -> float:
        fabric = self._node.fabric
        dt = fabric.sim.now - fabric._last
        rate = (
            self._node.in_rate if self._direction == "rx" else self._node.out_rate
        )
        return self._total + rate * dt


class FabricNode:
    """A host attached to the fabric.

    Exposes live receive/send byte counters (``rx``/``tx``) for
    throughput monitoring (Fig. 7(b)) and a ``protocol_cpu`` tracker
    whose level is the cores currently burned by protocol processing
    (``(in_rate + out_rate) * cpu_per_byte``) — part of the CPU trace in
    Fig. 7(a). ``rack`` places the host in a multi-rack topology; hosts
    in different racks contend for the rack uplinks when those are
    capacity-limited.
    """

    __slots__ = ("fabric", "name", "cores", "rack", "in_rate", "out_rate",
                 "rx", "tx", "protocol_cpu")

    def __init__(self, fabric: "NetworkFabric", name: str, cores: int = 8,
                 rack: int = 0):
        self.fabric = fabric
        self.name = name
        self.cores = cores
        self.rack = rack
        self.in_rate = 0.0
        self.out_rate = 0.0
        self.rx: ByteCounter = _LiveDirectionalCounter(self, "rx")
        self.tx: ByteCounter = _LiveDirectionalCounter(self, "tx")
        self.protocol_cpu = UtilizationTracker(fabric.sim, capacity=cores)

    def __repr__(self) -> str:
        return f"<FabricNode {self.name} rack={self.rack}>"


class FabricLinkTable:
    """Frozen, shareable link topology for one fabric equivalence class.

    A fabric's link structure is fully determined by the interconnect,
    the loopback/uplink bandwidths and the (host, rack) layout — none
    of which change during a healthy simulation. This table
    precomputes, once per class:

    * ``links[(src, dst)]`` — the traversed-link tuple of every
      possible flow, interned through a :class:`~repro.net.solver.\
LinkClassTable` so equal tuples are pointer-equal across flows (and
      across every simulation sharing the table);
    * ``caps[link]`` — the pristine capacity of every link, computed
      with the exact expressions :meth:`NetworkFabric._cap_of` uses.

    Tables are immutable after construction and safe to share between
    concurrent simulations; fault injection never mutates them (a
    faulted fabric falls back to computing scaled capacities itself).
    Obtain shared instances through :func:`link_table_for`.
    """

    __slots__ = ("interconnect_name", "loopback_bandwidth",
                 "rack_uplink_bandwidth", "hosts", "links", "caps")

    def __init__(
        self,
        interconnect: InterconnectSpec,
        loopback_bandwidth: float,
        rack_uplink_bandwidth: Optional[float],
        hosts: Tuple[Tuple[str, int], ...],
    ):
        """Precompute link tuples and capacities for ``hosts``
        (name, rack) pairs on the given interconnect."""
        self.interconnect_name = interconnect.name
        self.loopback_bandwidth = loopback_bandwidth
        self.rack_uplink_bandwidth = rack_uplink_bandwidth
        self.hosts = tuple(hosts)
        classes = LinkClassTable()
        racks = dict(self.hosts)
        links: Dict[Tuple[str, str], Tuple[Hashable, ...]] = {}
        caps: Dict[Hashable, float] = {}
        sustained = interconnect.sustained_bandwidth
        for name, _rack in self.hosts:
            links[(name, name)] = classes.intern((("loop", name),))
            caps[("loop", name)] = loopback_bandwidth
            caps[("out", name)] = sustained
            caps[("in", name)] = sustained
        for src, src_rack in self.hosts:
            for dst, dst_rack in self.hosts:
                if src == dst:
                    continue
                tup: Tuple[Hashable, ...] = (("out", src), ("in", dst))
                if rack_uplink_bandwidth is not None and src_rack != dst_rack:
                    tup = tup + (("rack-up", src_rack),
                                 ("rack-down", dst_rack))
                links[(src, dst)] = classes.intern(tup)
        if rack_uplink_bandwidth is not None:
            for rack in {r for _name, r in self.hosts}:
                caps[("rack-up", rack)] = rack_uplink_bandwidth
                caps[("rack-down", rack)] = rack_uplink_bandwidth
        self.links = links
        self.caps = caps


#: Process-wide FabricLinkTable cache, keyed by the class-defining
#: fields. Tables are tiny (O(hosts^2) small tuples) and immutable, so
#: the cache is unbounded like the matrix cache.
_LINK_TABLE_CACHE: Dict[tuple, FabricLinkTable] = {}


def link_table_for(
    interconnect: InterconnectSpec,
    loopback_bandwidth: float,
    rack_uplink_bandwidth: Optional[float],
    hosts: Tuple[Tuple[str, int], ...],
) -> FabricLinkTable:
    """The shared frozen link table of one fabric class (cached).

    Every simulation of the same (interconnect, bandwidths, host
    layout) class receives the *same* table object, so link tuples are
    interned process-wide and the per-job topology walk happens once
    per class instead of once per flow per job.
    """
    key = (interconnect.name, loopback_bandwidth, rack_uplink_bandwidth,
           tuple(hosts))
    table = _LINK_TABLE_CACHE.get(key)
    if table is None:
        table = FabricLinkTable(interconnect, loopback_bandwidth,
                                rack_uplink_bandwidth, tuple(hosts))
        _LINK_TABLE_CACHE[key] = table
    return table


def clear_link_table_cache() -> None:
    """Drop all cached fabric link tables (mainly for tests)."""
    _LINK_TABLE_CACHE.clear()


class NetworkFabric:
    """The cluster network: nodes, NIC capacities, max-min flow rates."""

    def __init__(
        self,
        sim: Simulator,
        interconnect: InterconnectSpec,
        loopback_bandwidth: float = DEFAULT_LOOPBACK_BANDWIDTH,
        rack_uplink_bandwidth: Optional[float] = None,
        solver: str = "incremental",
        link_table: Optional[FabricLinkTable] = None,
    ):
        """``rack_uplink_bandwidth`` caps each rack's aggregate traffic
        to/from the core switch (bytes/s, each direction). ``None``
        models the paper's single non-blocking switch. ``solver`` picks
        ``"incremental"`` (grouped fast solver + change-point skipping)
        or ``"reference"`` (the plain water-filling recompute); both
        produce bit-identical timings. ``link_table`` supplies a shared
        precomputed :class:`FabricLinkTable` for this fabric's class
        (see :func:`link_table_for`); it must describe the same
        interconnect and bandwidths, and unknown (src, dst) pairs or
        fault-scaled capacities fall back to computing locally."""
        if solver not in ("incremental", "reference"):
            raise ValueError(f"unknown solver {solver!r}")
        if link_table is not None and (
                link_table.interconnect_name != interconnect.name
                or link_table.loopback_bandwidth != loopback_bandwidth
                or link_table.rack_uplink_bandwidth != rack_uplink_bandwidth):
            raise ValueError(
                "link_table was built for a different fabric class "
                f"({link_table.interconnect_name!r}) than this fabric "
                f"({interconnect.name!r})")
        self.sim = sim
        self.interconnect = interconnect
        self.loopback_bandwidth = loopback_bandwidth
        self.rack_uplink_bandwidth = rack_uplink_bandwidth
        self.solver = solver
        self._link_table = link_table
        self.nodes: Dict[str, FabricNode] = {}
        self._active: List[Flow] = []
        self._last = sim.now
        self._timer_id = 0
        self._flow_ids = itertools.count()
        #: link -> number of active flows traversing it (incremental).
        self._link_counts: Dict[Hashable, int] = {}
        #: link -> capacity, filled lazily. Static unless fault
        #: injection scales a link through :meth:`set_link_factor`.
        self._caps: Dict[Hashable, float] = {}
        #: link -> capacity multiplier from fault injection (absent
        #: means 1.0; empty in every non-faulted run).
        self._link_factors: Dict[Hashable, float] = {}

    # -- topology --------------------------------------------------------

    def add_node(self, name: str, cores: int = 8, rack: int = 0) -> FabricNode:
        """Attach a host to the fabric (optionally in a rack)."""
        if name in self.nodes:
            raise ValueError(f"duplicate fabric node {name!r}")
        node = FabricNode(self, name, cores=cores, rack=rack)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> FabricNode:
        return self.nodes[name]

    # -- flows -------------------------------------------------------------

    def start_flow(
        self, src: str, dst: str, nbytes: float, delay: float = 0.0
    ) -> Flow:
        """Begin transferring ``nbytes`` from ``src`` to ``dst``.

        The flow starts consuming bandwidth after ``delay`` plus the
        interconnect's one-way latency (callers add transport-level
        setup costs through ``delay``). A zero-byte flow completes as
        soon as its latency elapses.
        """
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"unknown fabric node in {src!r}->{dst!r}")
        if nbytes < 0:
            raise ValueError(f"negative flow size: {nbytes}")
        flow = Flow(self, src, dst, nbytes)
        start_after = delay + self.interconnect.latency

        def activate() -> None:
            if flow.aborted:
                return  # aborted while waiting out its setup latency
            flow.started_at = self.sim.now
            if flow.remaining <= _EPS:
                flow.finished_at = self.sim.now
                flow.done.succeed(flow)
                self._trace_flow(flow)
                return
            self._advance()
            self._active.append(flow)
            counts = self._link_counts
            caps = self._caps
            for link in flow.links:
                if link in counts:
                    counts[link] += 1
                else:
                    counts[link] = 1
                    if link not in caps:
                        caps[link] = self._cap_of(link)
            self._recompute(flow)

        if start_after > 0:
            self.sim.call_at(self.sim.now + start_after, activate)
        else:
            activate()
        return flow

    @property
    def active_flows(self) -> int:
        return len(self._active)

    def abort_flow(self, flow: Flow) -> None:
        """Tear down an unfinished flow (fault injection: the fetcher
        died or the transfer failed). Its ``done`` event never fires;
        bytes already moved stay counted. Only called on faulted paths —
        never on a healthy run."""
        if flow.finished_at is not None or flow.aborted:
            return
        flow.aborted = True
        if flow not in self._active:
            return  # still waiting out its setup latency
        self._advance()
        self._active.remove(flow)
        for link in flow.links:
            self._link_counts[link] -= 1
        flow.finished_at = self.sim.now
        flow.rate = 0.0
        self._recompute(departed_seed=[flow])

    def set_link_factor(self, link: Hashable, factor: float) -> None:
        """Scale one link's capacity (fault injection: degraded NICs,
        flaky-link windows). ``factor`` is the absolute multiplier on
        the pristine capacity; 1.0 restores it. Forces a full re-solve —
        surviving flows must pick up the new capacity."""
        if factor <= 0:
            raise ValueError(f"link factor must be positive, got {factor}")
        self._advance()
        if factor == 1.0:
            self._link_factors.pop(link, None)
        else:
            self._link_factors[link] = factor
        if link in self._caps:
            self._caps[link] = self._cap_of(link)
        self._recompute(force_full=True)

    def _trace_flow(self, flow: Flow) -> None:
        """Record a finished flow on the trace bus (no-op when off)."""
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.complete(
                f"flow {flow.src}->{flow.dst}",
                CAT_NET,
                "net",
                flow.dst,
                flow.started_at,
                flow.finished_at,
                bytes=flow.nbytes,
                local=flow.is_local,
            )

    # -- rate bookkeeping ---------------------------------------------------

    def _links_of(self, flow: Flow) -> Tuple[Hashable, ...]:
        table = self._link_table
        if table is not None:
            links = table.links.get((flow.src, flow.dst))
            if links is not None:
                return links
        if flow.src == flow.dst:
            return (("loop", flow.src),)
        links: Tuple[Hashable, ...] = (("out", flow.src), ("in", flow.dst))
        if self.rack_uplink_bandwidth is not None:
            src_rack = self.nodes[flow.src].rack
            dst_rack = self.nodes[flow.dst].rack
            if src_rack != dst_rack:
                links = links + (
                    ("rack-up", src_rack), ("rack-down", dst_rack)
                )
        return links

    def _cap_of(self, link: Hashable) -> float:
        if self._link_table is not None and not self._link_factors:
            cap = self._link_table.caps.get(link)
            if cap is not None:
                return cap
        kind = link[0]
        if kind == "loop":
            cap = self.loopback_bandwidth
        elif kind in ("rack-up", "rack-down"):
            cap = self.rack_uplink_bandwidth
        else:
            cap = self.interconnect.sustained_bandwidth
        if self._link_factors:
            cap *= self._link_factors.get(link, 1.0)
        return cap

    def _link_caps(self) -> Dict[Hashable, float]:
        """Capacities of the links the active flows traverse (reference
        solver path; the incremental path uses the ``_caps`` cache)."""
        caps: Dict[Hashable, float] = {}
        for flow in self._active:
            for link in flow.links:
                caps[link] = self._cap_of(link)
        return caps

    def _advance(self) -> None:
        """Integrate transfers since the last change point."""
        now = self.sim.now
        dt = now - self._last
        if dt <= 0:
            self._last = now
            return
        nodes = self.nodes
        for flow in self._active:
            moved = flow.rate * dt
            flow.remaining -= moved
            if flow.wire:
                # rx/tx counters model NIC statistics; loopback traffic
                # never crosses the wire.
                nodes[flow.src].tx._total += moved
                nodes[flow.dst].rx._total += moved
        self._last = now

    def _recompute(self, new_flow: Optional[Flow] = None,
                   force_full: bool = False,
                   departed_seed: Optional[List[Flow]] = None) -> None:
        """Finish completed flows, re-run max-min, arm the next timer.

        ``new_flow`` is the flow appended at this change point, if any;
        it enables the private-links fast path (see class docstring).
        ``force_full`` disables that fast path (a link capacity just
        changed, so surviving rates are stale). ``departed_seed`` feeds
        flows already removed by the caller (an abort) into the
        private-links check.
        """
        counts = self._link_counts
        departed: List[Flow] = list(departed_seed) if departed_seed else []
        while True:
            finished = [f for f in self._active if f.remaining <= _EPS]
            if finished:
                self._active = [f for f in self._active if f.remaining > _EPS]
                departed.extend(finished)
                for flow in finished:
                    flow.remaining = 0.0
                    flow.finished_at = self.sim.now
                    for link in flow.links:
                        counts[link] -= 1
                    flow.done.succeed(flow)
                    self._trace_flow(flow)
            if not self._active:
                break
            # Guard against sub-float-resolution remainders freezing the
            # clock on zero-delay timers (see FairShareResource).
            min_remaining = min(f.remaining for f in self._active)
            probe_rate = max(
                self.interconnect.effective_bandwidth, self.loopback_bandwidth
            )
            if self.sim.now + min_remaining / probe_rate > self.sim.now:
                break
            threshold = min_remaining + _EPS
            for flow in self._active:
                if flow.remaining <= threshold:
                    flow.remaining = 0.0

        active = self._active
        if self.solver == "reference":
            rates = compute_max_min(active, self._link_caps(),
                                    lambda f: f.links)
            self._apply_rates(active, rates)
        elif not force_full and self._links_private(departed, new_flow):
            # Change-point skip: every link touched by the changed flows
            # is now used by nobody (departures) or only by the new flow
            # (arrival). Surviving flows keep their rates; only the
            # changed endpoints need bookkeeping.
            self._apply_private(departed, new_flow)
        else:
            rates = solve_max_min_grouped(active, self._caps)
            self._apply_rates(active, rates)

        self._timer_id += 1
        if not active:
            return
        positive = [f for f in active if f.rate > 0]
        if not positive:  # pragma: no cover - capacities are positive
            return
        next_done = min(f.remaining / f.rate for f in positive)
        timer_id = self._timer_id

        def on_timer() -> None:
            if timer_id != self._timer_id:
                return  # superseded by a later arrival/departure
            self._advance()
            self._recompute()

        self.sim.call_at(self.sim.now + next_done, on_timer)

    # -- allocation bookkeeping ------------------------------------------

    def _links_private(self, departed: List[Flow],
                       new_flow: Optional[Flow]) -> bool:
        """True when no *surviving pre-existing* flow shares a link with
        any changed flow, so the previous allocation provably stands."""
        counts = self._link_counts
        if new_flow is not None:
            for link in new_flow.links:
                if counts[link] != 1:
                    return False
        new_links = new_flow.links if new_flow is not None else ()
        for flow in departed:
            for link in flow.links:
                if link not in new_links and counts[link] != 0:
                    return False
        return True

    def _apply_rates(self, active: List[Flow], rates: Dict[Flow, float]) -> None:
        """Full node-rate refresh after a solver run (reference order)."""
        in_rate: Dict[str, float] = {name: 0.0 for name in self.nodes}
        out_rate: Dict[str, float] = {name: 0.0 for name in self.nodes}
        for flow in active:
            flow.rate = rates.get(flow, 0.0)
            if flow.wire:
                out_rate[flow.src] += flow.rate
                in_rate[flow.dst] += flow.rate
        cpu_per_byte = self.interconnect.cpu_per_byte
        for name, node in self.nodes.items():
            node.in_rate = in_rate[name]
            node.out_rate = out_rate[name]
            level = (in_rate[name] + out_rate[name]) * cpu_per_byte
            node.protocol_cpu.set_level(min(float(node.cores), level))

    def _apply_private(self, departed: List[Flow],
                       new_flow: Optional[Flow]) -> None:
        """Endpoint-only bookkeeping for the private-links fast path.

        A departed wire flow leaves its endpoints with *no* remaining
        flows in that direction (its links' counts are zero), so the
        directional rates collapse to exactly 0.0 — the same value a
        fresh solver sum would produce. A new flow with private links
        gets ``min(cap)`` — exactly what progressive filling assigns a
        flow that shares no link — and its endpoints' directional rates
        go from exactly 0.0 to exactly its rate.
        """
        nodes = self.nodes
        touched: Dict[str, FabricNode] = {}
        for flow in departed:
            if flow.wire:
                src, dst = nodes[flow.src], nodes[flow.dst]
                src.out_rate = 0.0
                dst.in_rate = 0.0
                touched[flow.src] = src
                touched[flow.dst] = dst
        if new_flow is not None:
            caps = self._caps
            rate = min(caps[link] for link in new_flow.links)
            new_flow.rate = rate
            if new_flow.wire:
                src, dst = nodes[new_flow.src], nodes[new_flow.dst]
                src.out_rate = rate
                dst.in_rate = rate
                touched[new_flow.src] = src
                touched[new_flow.dst] = dst
        if touched:
            cpu_per_byte = self.interconnect.cpu_per_byte
            for node in touched.values():
                level = (node.in_rate + node.out_rate) * cpu_per_byte
                node.protocol_cpu.set_level(min(float(node.cores), level))
