"""Flow-level network fabric with max-min fair bandwidth sharing.

The MapReduce shuffle creates an all-to-all traffic pattern: every
reduce task fetches a segment from every map task's host. On a cluster
with a non-blocking switch (both testbeds in the paper use one), the
contended resources are the per-node NIC ingress and egress capacities.
TCP's AIMD converges to an allocation close to *max-min fairness* over
those capacities, so the fabric computes exact max-min rates by
progressive filling whenever the set of active flows changes, and
integrates transferred bytes between change points.

Node-local transfers (a reducer fetching from a mapper on the same
host) do not touch the NIC; they ride a per-node loopback link with its
own (memory-speed) capacity, which is why local fetches are equally
fast on every interconnect — as in real Hadoop.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.net.interconnect import InterconnectSpec
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.monitor import ByteCounter, UtilizationTracker

_EPS = 1e-6

#: Default loopback (same-host) transfer bandwidth, bytes/s. Memory-copy
#: speed through the local socket stack; identical for all interconnects.
DEFAULT_LOOPBACK_BANDWIDTH = 3.0e9


def compute_max_min(
    flows: Iterable["Flow"],
    link_caps: Dict[Hashable, float],
    links_of: Callable[["Flow"], Tuple[Hashable, ...]],
) -> Dict["Flow", float]:
    """Water-filling max-min fair allocation.

    Every flow traverses the links ``links_of(flow)``; each link has
    capacity ``link_caps[link]``. Repeatedly: find the most-contended
    link (smallest remaining-capacity / active-flow-count), freeze all
    its active flows at that fair share, subtract, repeat.

    Returns a dict flow -> rate. The allocation is work-conserving and
    never exceeds any link capacity (asserted by property tests).
    """
    flows = list(flows)
    rates: Dict[Flow, float] = {}
    remaining = dict(link_caps)
    link_flows: Dict[Hashable, List[Flow]] = {}
    for flow in flows:
        for link in links_of(flow):
            link_flows.setdefault(link, []).append(flow)
    active = set(flows)
    while active:
        bottleneck = None
        bottleneck_fair = None
        for link, members in link_flows.items():
            n = sum(1 for f in members if f in active)
            if n == 0:
                continue
            fair = max(0.0, remaining[link]) / n
            if bottleneck_fair is None or fair < bottleneck_fair:
                bottleneck_fair = fair
                bottleneck = link
        if bottleneck is None:  # pragma: no cover - active implies a link
            break
        for flow in link_flows[bottleneck]:
            if flow not in active:
                continue
            rates[flow] = bottleneck_fair
            active.remove(flow)
            for link in links_of(flow):
                remaining[link] -= bottleneck_fair
    return rates


class Flow:
    """One in-flight transfer between two fabric nodes.

    ``done`` succeeds (with the flow as value) when the last byte has
    been delivered. ``rate`` is the current max-min share in bytes/s.
    """

    _ids = itertools.count()

    def __init__(self, fabric: "NetworkFabric", src: str, dst: str, nbytes: float):
        self.id = next(Flow._ids)
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done: Event = fabric.sim.event(name=f"flow#{self.id}:{src}->{dst}")

    @property
    def is_local(self) -> bool:
        return self.src == self.dst

    def __repr__(self) -> str:
        return (
            f"<Flow#{self.id} {self.src}->{self.dst} "
            f"{self.remaining:.0f}/{self.nbytes:.0f}B @ {self.rate:.0f}B/s>"
        )


class _LiveDirectionalCounter(ByteCounter):
    """Byte counter including in-flight progress since the last change point."""

    def __init__(self, node: "FabricNode", direction: str):
        super().__init__()
        self._node = node
        self._direction = direction

    @property
    def total(self) -> float:
        fabric = self._node.fabric
        dt = fabric.sim.now - fabric._last
        rate = (
            self._node.in_rate if self._direction == "rx" else self._node.out_rate
        )
        return self._total + rate * dt


class FabricNode:
    """A host attached to the fabric.

    Exposes live receive/send byte counters (``rx``/``tx``) for
    throughput monitoring (Fig. 7(b)) and a ``protocol_cpu`` tracker
    whose level is the cores currently burned by protocol processing
    (``(in_rate + out_rate) * cpu_per_byte``) — part of the CPU trace in
    Fig. 7(a). ``rack`` places the host in a multi-rack topology; hosts
    in different racks contend for the rack uplinks when those are
    capacity-limited.
    """

    def __init__(self, fabric: "NetworkFabric", name: str, cores: int = 8,
                 rack: int = 0):
        self.fabric = fabric
        self.name = name
        self.cores = cores
        self.rack = rack
        self.in_rate = 0.0
        self.out_rate = 0.0
        self.rx: ByteCounter = _LiveDirectionalCounter(self, "rx")
        self.tx: ByteCounter = _LiveDirectionalCounter(self, "tx")
        self.protocol_cpu = UtilizationTracker(fabric.sim, capacity=cores)

    def __repr__(self) -> str:
        return f"<FabricNode {self.name} rack={self.rack}>"


class NetworkFabric:
    """The cluster network: nodes, NIC capacities, max-min flow rates."""

    def __init__(
        self,
        sim: Simulator,
        interconnect: InterconnectSpec,
        loopback_bandwidth: float = DEFAULT_LOOPBACK_BANDWIDTH,
        rack_uplink_bandwidth: Optional[float] = None,
    ):
        """``rack_uplink_bandwidth`` caps each rack's aggregate traffic
        to/from the core switch (bytes/s, each direction). ``None``
        models the paper's single non-blocking switch."""
        self.sim = sim
        self.interconnect = interconnect
        self.loopback_bandwidth = loopback_bandwidth
        self.rack_uplink_bandwidth = rack_uplink_bandwidth
        self.nodes: Dict[str, FabricNode] = {}
        self._active: List[Flow] = []
        self._last = sim.now
        self._timer_id = 0

    # -- topology --------------------------------------------------------

    def add_node(self, name: str, cores: int = 8, rack: int = 0) -> FabricNode:
        """Attach a host to the fabric (optionally in a rack)."""
        if name in self.nodes:
            raise ValueError(f"duplicate fabric node {name!r}")
        node = FabricNode(self, name, cores=cores, rack=rack)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> FabricNode:
        return self.nodes[name]

    # -- flows -------------------------------------------------------------

    def start_flow(
        self, src: str, dst: str, nbytes: float, delay: float = 0.0
    ) -> Flow:
        """Begin transferring ``nbytes`` from ``src`` to ``dst``.

        The flow starts consuming bandwidth after ``delay`` plus the
        interconnect's one-way latency (callers add transport-level
        setup costs through ``delay``). A zero-byte flow completes as
        soon as its latency elapses.
        """
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"unknown fabric node in {src!r}->{dst!r}")
        if nbytes < 0:
            raise ValueError(f"negative flow size: {nbytes}")
        flow = Flow(self, src, dst, nbytes)
        start_after = delay + self.interconnect.latency

        def activate() -> None:
            flow.started_at = self.sim.now
            if flow.remaining <= _EPS:
                flow.finished_at = self.sim.now
                flow.done.succeed(flow)
                return
            self._advance()
            self._active.append(flow)
            self._recompute()

        if start_after > 0:
            self.sim.call_at(self.sim.now + start_after, activate)
        else:
            activate()
        return flow

    @property
    def active_flows(self) -> int:
        return len(self._active)

    # -- rate bookkeeping ---------------------------------------------------

    def _links_of(self, flow: Flow) -> Tuple[Hashable, ...]:
        if flow.is_local:
            return (("loop", flow.src),)
        links: Tuple[Hashable, ...] = (("out", flow.src), ("in", flow.dst))
        if self.rack_uplink_bandwidth is not None:
            src_rack = self.nodes[flow.src].rack
            dst_rack = self.nodes[flow.dst].rack
            if src_rack != dst_rack:
                links = links + (
                    ("rack-up", src_rack), ("rack-down", dst_rack)
                )
        return links

    def _link_caps(self) -> Dict[Hashable, float]:
        caps: Dict[Hashable, float] = {}
        bw = self.interconnect.sustained_bandwidth
        for flow in self._active:
            for link in self._links_of(flow):
                kind = link[0]
                if kind == "loop":
                    caps[link] = self.loopback_bandwidth
                elif kind in ("rack-up", "rack-down"):
                    caps[link] = self.rack_uplink_bandwidth
                else:
                    caps[link] = bw
        return caps

    def _advance(self) -> None:
        """Integrate transfers since the last change point."""
        now = self.sim.now
        dt = now - self._last
        if dt <= 0:
            self._last = now
            return
        for flow in self._active:
            moved = flow.rate * dt
            flow.remaining -= moved
            if not flow.is_local:
                # rx/tx counters model NIC statistics; loopback traffic
                # never crosses the wire.
                self.nodes[flow.src].tx._total += moved
                self.nodes[flow.dst].rx._total += moved
        self._last = now

    def _recompute(self) -> None:
        """Finish completed flows, re-run max-min, arm the next timer."""
        while True:
            finished = [f for f in self._active if f.remaining <= _EPS]
            if finished:
                self._active = [f for f in self._active if f.remaining > _EPS]
                for flow in finished:
                    flow.remaining = 0.0
                    flow.finished_at = self.sim.now
                    flow.done.succeed(flow)
            if not self._active:
                break
            # Guard against sub-float-resolution remainders freezing the
            # clock on zero-delay timers (see FairShareResource).
            min_remaining = min(f.remaining for f in self._active)
            probe_rate = max(
                self.interconnect.effective_bandwidth, self.loopback_bandwidth
            )
            if self.sim.now + min_remaining / probe_rate > self.sim.now:
                break
            threshold = min_remaining + _EPS
            for flow in self._active:
                if flow.remaining <= threshold:
                    flow.remaining = 0.0

        rates = compute_max_min(self._active, self._link_caps(), self._links_of)
        in_rate: Dict[str, float] = {name: 0.0 for name in self.nodes}
        out_rate: Dict[str, float] = {name: 0.0 for name in self.nodes}
        for flow in self._active:
            flow.rate = rates.get(flow, 0.0)
            if not flow.is_local:
                out_rate[flow.src] += flow.rate
                in_rate[flow.dst] += flow.rate
        cpu_per_byte = self.interconnect.cpu_per_byte
        for name, node in self.nodes.items():
            node.in_rate = in_rate[name]
            node.out_rate = out_rate[name]
            level = (in_rate[name] + out_rate[name]) * cpu_per_byte
            node.protocol_cpu.set_level(min(float(node.cores), level))

        self._timer_id += 1
        if not self._active:
            return
        positive = [f for f in self._active if f.rate > 0]
        if not positive:  # pragma: no cover - capacities are positive
            return
        next_done = min(f.remaining / f.rate for f in positive)
        timer_id = self._timer_id

        def on_timer() -> None:
            if timer_id != self._timer_id:
                return  # superseded by a later arrival/departure
            self._advance()
            self._recompute()

        self.sim.call_at(self.sim.now + next_done, on_timer)
