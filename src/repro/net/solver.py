"""Max-min fair rate allocation: reference and grouped solvers.

The all-to-all MapReduce shuffle drives up to M x R concurrent flows
through the fabric, and the fabric re-solves the allocation on every
flow arrival and departure. Two solvers live here:

:func:`compute_max_min`
    The reference progressive-filling (water-filling) solver. O(links x
    memberships) per frozen-link iteration; kept as the specification
    the fast solver is tested against, and selectable on the fabric via
    ``solver="reference"``.

:func:`solve_max_min_grouped`
    The production solver. Flows that traverse the *same link tuple*
    (same source host, same destination host, same rack path) receive
    identical fair shares at every step of progressive filling, so they
    form an equivalence class that can be frozen atomically. The solver
    iterates over O(hosts^2) classes instead of O(M x R) flows, and per
    link it maintains an active-flow *count* instead of rescanning
    membership lists.

Bit-identical results
---------------------
The grouped solver reproduces the reference solver's floating-point
arithmetic exactly (property-tested in
``tests/net/test_solver_equivalence.py``), which is what makes swapping
it into the fabric safe for the paper's figures. Three properties make
this work:

1. **Link iteration order.** The reference scans candidate bottleneck
   links in first-touch order (the order links are first reached while
   walking the active-flow list). Ties in fair share are broken by that
   order via a strict ``<`` comparison. The grouped solver builds its
   link table in the identical order.
2. **Identical fair-share expression.** Both compute
   ``max(0, remaining) / active_count`` with the same operand values:
   counts are maintained exactly, and ``remaining`` evolves through the
   same sequence of subtractions (see 3).
3. **Per-flow subtraction.** When a bottleneck freezes k flows of a
   class, the reference subtracts the fair share from each traversed
   link k separate times. Repeated subtraction of the same value is
   order-insensitive but *not* equal to ``remaining - k * fair`` in
   floating point, so the grouped solver performs the same k
   subtractions.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Tuple

__all__ = ["LinkClassTable", "compute_max_min", "solve_max_min_grouped"]


class LinkClassTable:
    """Interning table for flow link tuples (the solver's class keys).

    :func:`solve_max_min_grouped` keys its equivalence classes by each
    flow's traversed-link tuple. Those tuples are structurally
    identical across every flow of one (src, dst) pair — and, in a
    batched campaign, across every fabric of one equivalence class —
    so interning them makes equal keys *pointer-equal*: each distinct
    tuple is hashed once at intern time, and dict operations on the
    class tables short-circuit on identity. This is purely an
    allocation/identity optimization; the tuples' values (and hence
    every solver result) are untouched.
    """

    __slots__ = ("_classes",)

    def __init__(self) -> None:
        """Start with no interned link tuples."""
        self._classes: Dict[Tuple[Hashable, ...], Tuple[Hashable, ...]] = {}

    def intern(self, links: Tuple[Hashable, ...]) -> Tuple[Hashable, ...]:
        """Return the canonical instance of ``links`` (first one wins)."""
        return self._classes.setdefault(links, links)

    def __len__(self) -> int:
        """Number of distinct link tuples interned so far."""
        return len(self._classes)


def compute_max_min(
    flows: Iterable["Flow"],  # noqa: F821 - duck-typed; needs only identity
    link_caps: Dict[Hashable, float],
    links_of: Callable[["Flow"], Tuple[Hashable, ...]],  # noqa: F821
) -> Dict["Flow", float]:  # noqa: F821
    """Water-filling max-min fair allocation (reference implementation).

    Every flow traverses the links ``links_of(flow)``; each link has
    capacity ``link_caps[link]``. Repeatedly: find the most-contended
    link (smallest remaining-capacity / active-flow-count), freeze all
    its active flows at that fair share, subtract, repeat.

    Returns a dict flow -> rate. The allocation is work-conserving and
    never exceeds any link capacity (asserted by property tests).
    """
    flows = list(flows)
    rates: Dict["Flow", float] = {}  # noqa: F821
    remaining = dict(link_caps)
    link_flows: Dict[Hashable, List["Flow"]] = {}  # noqa: F821
    for flow in flows:
        for link in links_of(flow):
            link_flows.setdefault(link, []).append(flow)
    active = set(flows)
    while active:
        bottleneck = None
        bottleneck_fair = None
        for link, members in link_flows.items():
            n = sum(1 for f in members if f in active)
            if n == 0:
                continue
            fair = max(0.0, remaining[link]) / n
            if bottleneck_fair is None or fair < bottleneck_fair:
                bottleneck_fair = fair
                bottleneck = link
        if bottleneck is None:  # pragma: no cover - active implies a link
            break
        for flow in link_flows[bottleneck]:
            if flow not in active:
                continue
            rates[flow] = bottleneck_fair
            active.remove(flow)
            for link in links_of(flow):
                remaining[link] -= bottleneck_fair
    return rates


def solve_max_min_grouped(
    flows: List["Flow"],  # noqa: F821 - needs .links (tuple of hashables)
    link_caps: Dict[Hashable, float],
) -> Dict["Flow", float]:  # noqa: F821
    """Grouped water-filling over link-tuple equivalence classes.

    ``flows`` must carry their traversed links as a pre-computed
    ``links`` tuple (the fabric caches it at flow creation). Flows with
    the same tuple are interchangeable under progressive filling — they
    see identical fair shares on every link and freeze together — so
    the solver manipulates one class per distinct tuple.

    Returns rates bit-identical to
    ``compute_max_min(flows, link_caps, lambda f: f.links)``.
    """
    rates: Dict["Flow", float] = {}  # noqa: F821
    if not flows:
        return rates

    # One pass over the active flows (in list order) builds, in the
    # reference solver's first-touch order: the per-link active counts,
    # the working remaining-capacity table, and the class membership.
    groups: Dict[Tuple[Hashable, ...], List["Flow"]] = {}  # noqa: F821
    counts: Dict[Hashable, int] = {}
    remaining: Dict[Hashable, float] = {}
    link_groups: Dict[Hashable, List[Tuple[Hashable, ...]]] = {}
    for flow in flows:
        links = flow.links
        members = groups.get(links)
        if members is None:
            groups[links] = [flow]
            for link in links:
                if link in counts:
                    counts[link] += 1
                    link_groups[link].append(links)
                else:
                    counts[link] = 1
                    remaining[link] = link_caps[link]
                    link_groups[link] = [links]
        else:
            members.append(flow)
            for link in links:
                counts[link] += 1

    unfrozen = len(groups)
    frozen = set()
    while unfrozen:
        bottleneck = None
        bottleneck_fair = None
        for link, n in counts.items():
            if n == 0:
                continue
            r = remaining[link]
            fair = (r if r > 0.0 else 0.0) / n
            if bottleneck_fair is None or fair < bottleneck_fair:
                bottleneck_fair = fair
                bottleneck = link
        if bottleneck is None:  # pragma: no cover - unfrozen implies a link
            break
        for key in link_groups[bottleneck]:
            if key in frozen:
                continue
            frozen.add(key)
            unfrozen -= 1
            members = groups[key]
            k = len(members)
            for flow in members:
                rates[flow] = bottleneck_fair
            for link in key:
                # k sequential subtractions, matching the reference's
                # per-flow updates exactly (see module docstring).
                r = remaining[link]
                if k == 1:
                    r -= bottleneck_fair
                else:
                    for _ in range(k):
                        r -= bottleneck_fair
                remaining[link] = r
                counts[link] -= k
    return rates
