"""Interconnect/protocol models.

Each :class:`InterconnectSpec` captures the application-visible
characteristics of a network *as seen by Hadoop's shuffle*, i.e. after
the protocol stack (sockets, IPoIB, or RDMA verbs):

``effective_bandwidth``
    Sustained application-level point-to-point throughput in bytes/s.
    These are the ceilings the paper itself observes in Fig. 7(b):
    ~110 MB/s for 1 GigE, ~520 MB/s for 10 GigE sockets on Westmere,
    ~950 MB/s for IPoIB QDR. (A 10 GigE wire could carry ~1.2 GB/s; the
    socket stack on 2.67 GHz Westmere cores cannot.)

``latency``
    One-way small-message latency of the stack.

``fetch_setup``
    Fixed per-fetch cost: HTTP request parsing, servlet dispatch and
    connection handling for TCP-based stacks; QP work-request posting
    for RDMA.

``cpu_per_byte``
    Core-seconds consumed per byte moved (protocol processing,
    intermediate copies). Near zero for RDMA — the defining property
    that the MRoIB case study (Sect. 6) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

MB = 1e6
GB = 1e9


@dataclass(frozen=True)
class InterconnectSpec:
    """Application-level model of one network/protocol combination."""

    name: str
    #: Marketing link speed, bits/s (documentation only).
    raw_gbps: float
    #: Sustained app-level point-to-point bandwidth, bytes/s.
    effective_bandwidth: float
    #: One-way small-message latency, seconds.
    latency: float
    #: Fixed per-fetch overhead, seconds.
    fetch_setup: float
    #: Protocol CPU cost, core-seconds per byte (per endpoint).
    cpu_per_byte: float
    #: Fraction of ``effective_bandwidth`` the stack sustains under the
    #: many-stream shuffle load (vs. the single-stream burst peak). The
    #: sockets stack on 10 GigE hardware of this era is well documented
    #: to sustain far below its burst rate without heavy tuning; wire-
    #: limited 1 GigE and RDMA sustain their peak.
    shuffle_efficiency: float = 1.0
    #: True for RDMA-capable transports (zero-copy, kernel bypass).
    rdma: bool = False

    def __post_init__(self) -> None:
        if self.effective_bandwidth <= 0:
            raise ValueError(f"{self.name}: effective_bandwidth must be > 0")
        if self.latency < 0 or self.fetch_setup < 0 or self.cpu_per_byte < 0:
            raise ValueError(f"{self.name}: overheads must be >= 0")
        if not 0.0 < self.shuffle_efficiency <= 1.0:
            raise ValueError(f"{self.name}: shuffle_efficiency must be in (0, 1]")

    @property
    def sustained_bandwidth(self) -> float:
        """Bandwidth sustained during an all-to-all shuffle, bytes/s."""
        return self.effective_bandwidth * self.shuffle_efficiency

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended time to move ``nbytes`` point-to-point."""
        return self.fetch_setup + self.latency + nbytes / self.effective_bandwidth

    def __str__(self) -> str:
        return self.name


#: Gigabit Ethernet via the sockets stack (TCP). The paper's baseline.
ONE_GIGE = InterconnectSpec(
    name="1GigE",
    raw_gbps=1.0,
    effective_bandwidth=112 * MB,
    latency=80e-6,
    fetch_setup=1.3e-3,
    cpu_per_byte=3.0e-9,
)

#: 10-Gigabit Ethernet (NetEffect NE020 accelerated adapters), sockets.
#: Socket-stack-limited well below wire speed, per Fig. 7(b).
TEN_GIGE = InterconnectSpec(
    name="10GigE",
    raw_gbps=10.0,
    effective_bandwidth=525 * MB,
    latency=40e-6,
    fetch_setup=1.0e-3,
    cpu_per_byte=2.6e-9,
    shuffle_efficiency=0.55,
)

#: IP-over-InfiniBand on QDR HCAs (32 Gbps signalling).
IPOIB_QDR = InterconnectSpec(
    name="IPoIB-QDR(32Gbps)",
    raw_gbps=32.0,
    effective_bandwidth=955 * MB,
    latency=22e-6,
    fetch_setup=0.85e-3,
    cpu_per_byte=2.2e-9,
    shuffle_efficiency=0.93,
)

#: IP-over-InfiniBand on FDR HCAs (56 Gbps signalling), Cluster B.
IPOIB_FDR = InterconnectSpec(
    name="IPoIB-FDR(56Gbps)",
    raw_gbps=56.0,
    effective_bandwidth=1350 * MB,
    latency=18e-6,
    fetch_setup=0.8e-3,
    cpu_per_byte=2.0e-9,
    # IPoIB throughput is stack-bound, not link-bound: moving from QDR
    # to FDR barely raises sustained shuffle throughput — the exact
    # pathology the MRoIB case study (Sect. 6) attacks.
    shuffle_efficiency=0.68,
)

#: Native InfiniBand verbs on FDR HCAs — the MRoIB transport.
RDMA_FDR = InterconnectSpec(
    name="RDMA-FDR(56Gbps)",
    raw_gbps=56.0,
    effective_bandwidth=5500 * MB,
    latency=2.5e-6,
    fetch_setup=0.06e-3,
    cpu_per_byte=0.05e-9,
    rdma=True,
)

#: Registry of all modeled interconnects, by canonical name and by the
#: short aliases used throughout the benchmark CLI and configs.
INTERCONNECTS: Dict[str, InterconnectSpec] = {
    spec.name: spec
    for spec in (ONE_GIGE, TEN_GIGE, IPOIB_QDR, IPOIB_FDR, RDMA_FDR)
}
_ALIASES = {
    "1gige": ONE_GIGE,
    "1ge": ONE_GIGE,
    "10gige": TEN_GIGE,
    "10ge": TEN_GIGE,
    "ipoib-qdr": IPOIB_QDR,
    "ipoib_qdr": IPOIB_QDR,
    "ipoib32": IPOIB_QDR,
    "ipoib-fdr": IPOIB_FDR,
    "ipoib_fdr": IPOIB_FDR,
    "ipoib56": IPOIB_FDR,
    "rdma": RDMA_FDR,
    "rdma-fdr": RDMA_FDR,
    "rdma_fdr": RDMA_FDR,
}


def get_interconnect(name: str) -> InterconnectSpec:
    """Look up an interconnect by canonical name or alias (case-insensitive)."""
    if name in INTERCONNECTS:
        return INTERCONNECTS[name]
    spec = _ALIASES.get(name.lower())
    if spec is None:
        known = sorted(INTERCONNECTS) + sorted(_ALIASES)
        raise KeyError(f"unknown interconnect {name!r}; known: {known}")
    return spec


def canonical_name(name: str) -> str:
    """Resolve any interconnect name or alias to its canonical name.

    Two configs whose ``network`` strings are different aliases of the
    same fabric (``"ipoib-qdr"`` vs ``"IPoIB-QDR(32Gbps)"``) simulate
    identically, so equivalence-class keys (campaign batching, store
    provenance) use this resolved form.
    """
    return get_interconnect(name).name
