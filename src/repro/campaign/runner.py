"""Execute campaigns through the result store.

:func:`run_campaign` expands a :class:`~repro.campaign.spec.Campaign`
to its point grid, serves every point already in the
:class:`~repro.store.ResultStore` from disk (skip-on-hit), fans the
remaining simulations over a process pool (reusing the suite's
``jobs=N`` machinery), records fresh results back to the store, and
tags every record with the campaign name and point coordinates so the
Experiment Book can later regroup them from store contents alone.

Progress is structured: each completed point emits a
:class:`PointProgress` to the optional ``progress`` callback (the CLI
renders them as one line per point), so long campaigns are observable
without parsing stdout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.core.suite import MicroBenchmarkSuite, SweepResult, SweepRow
from repro.campaign.spec import Campaign, CampaignPoint
from repro.store import ResultStore

#: Signature of the progress callback.
ProgressFn = Callable[["PointProgress"], None]


@dataclass(frozen=True)
class PointProgress:
    """Structured progress event for one completed campaign point."""

    campaign: str
    index: int
    total: int
    label: str
    key: str
    cached: bool
    execution_time: float

    def render(self) -> str:
        """One-line human form (used by ``repro campaign run``)."""
        origin = "store" if self.cached else "run  "
        return (f"[{self.index}/{self.total}] {self.campaign}: "
                f"{self.label:<32} {origin}  {self.execution_time:9.1f} s")


@dataclass
class CampaignPointResult:
    """One executed (or store-served) campaign point."""

    point: CampaignPoint
    key: str
    cached: bool
    result: object  # SimJobResult or StoredResult (same surface)


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: Campaign
    points: List[CampaignPointResult]
    #: Points simulated in this run (store misses).
    executed: int
    #: Points served from the disk store without simulating.
    from_store: int

    def sweep_result(self, variant: str = "", trial: int = 0) -> SweepResult:
        """One variant's size×network grid as a figure-shaped sweep."""
        rows = [
            SweepRow(
                benchmark=self.campaign.benchmark,
                network=p.result.interconnect_name,
                shuffle_gb=p.point.shuffle_gb,
                execution_time=p.result.execution_time,
                result=p.result,
            )
            for p in self.points
            if p.point.variant == variant and p.point.trial == trial
        ]
        if not rows:
            have = sorted({p.point.variant for p in self.points})
            raise KeyError(
                f"campaign {self.campaign.name!r} has no variant "
                f"{variant!r} (has: {have})"
            )
        return SweepResult(rows)

    def variants(self) -> List[str]:
        """Variant labels present, in campaign order."""
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.point.variant, None)
        return list(seen)


def run_campaign(
    campaign: Campaign,
    store: Optional[Union[ResultStore, str]] = None,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
) -> CampaignResult:
    """Run every point of a campaign, skipping points already stored.

    With a ``store``, previously-computed points are served from disk
    (no simulation) and fresh points are recorded and tagged; without
    one the campaign still runs, just uncached. ``jobs > 1`` fans the
    misses over a process pool with bit-identical results.
    """
    if isinstance(store, str):
        store = ResultStore(store)
    suite = MicroBenchmarkSuite(
        cluster=campaign.cluster_spec(),
        jobconf=campaign.jobconf(),
        fault_plan=campaign.fault_plan,
        store=store,
    )
    points = campaign.points()
    keys = [suite.store_key(p.config) for p in points]
    cached_before = [
        store.contains(key) if store is not None else False for key in keys
    ]
    results = suite._run_points([p.config for p in points], jobs=jobs)

    out: List[CampaignPointResult] = []
    for i, (point, key, cached, result) in enumerate(
        zip(points, keys, cached_before, results), start=1
    ):
        if store is not None:
            store.tag(key, campaign.name, {
                "figure": campaign.figure,
                "title": campaign.title,
                "benchmark": campaign.benchmark,
                "variant": point.variant,
                "shuffle_gb": point.shuffle_gb,
                "network": point.network,
                "trial": point.trial,
                "baseline": campaign.baseline or campaign.networks[0],
                "faulty": campaign.fault_plan is not None,
            })
        out.append(CampaignPointResult(
            point=point, key=key, cached=cached, result=result,
        ))
        if progress is not None:
            progress(PointProgress(
                campaign=campaign.name,
                index=i,
                total=len(points),
                label=point.label(),
                key=key,
                cached=cached,
                execution_time=result.execution_time,
            ))
    return CampaignResult(
        campaign=campaign,
        points=out,
        executed=sum(1 for c in cached_before if not c),
        from_store=sum(1 for c in cached_before if c),
    )
