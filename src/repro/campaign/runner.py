"""Execute campaigns through the result store.

:func:`run_campaign` expands a :class:`~repro.campaign.spec.Campaign`
to its point grid and drives every point through the hardened
:class:`~repro.campaign.executor.CampaignExecutor`: points already in
the :class:`~repro.store.ResultStore` are served from disk
(skip-on-hit), the remaining simulations run with per-point retry,
timeout and worker-crash isolation under the given
:class:`~repro.campaign.executor.RetryPolicy`, failures are
quarantined instead of aborting the campaign, and fresh results are
recorded back to the store and tagged with the campaign name and point
coordinates so the Experiment Book can later regroup them from store
contents alone.

Progress is structured: each completed point emits a
:class:`PointProgress` to the optional ``progress`` callback (the CLI
renders them as one line per point, in completion order), so long
campaigns are observable without parsing stdout.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.core.suite import MicroBenchmarkSuite, SweepResult, SweepRow
from repro.campaign.backend import ExecutionBackend
from repro.campaign.executor import (
    STATUS_CACHED,
    CampaignExecutor,
    ExecutionReport,
    PointOutcome,
    RetryPolicy,
)
from repro.campaign.spec import Campaign, CampaignPoint
from repro.sim.trace import Tracer
from repro.store import ResultStore

#: Signature of the progress callback.
ProgressFn = Callable[["PointProgress"], None]


@dataclass(frozen=True)
class PointProgress:
    """Structured progress event for one completed campaign point."""

    campaign: str
    index: int
    total: int
    label: str
    key: str
    cached: bool
    execution_time: float
    #: Outcome status (``ok``/``cached``/``failed``/``skipped``).
    status: str = "ok"
    #: Attempts the point took (0 when served from the store).
    attempts: int = 1

    def render(self) -> str:
        """One-line human form (used by ``repro campaign run``)."""
        if self.status == "failed":
            suffix = (f" after {self.attempts} attempt(s)"
                      if self.attempts > 1 else "")
            return (f"[{self.index}/{self.total}] {self.campaign}: "
                    f"{self.label:<32} FAILED{suffix} -> quarantine")
        origin = "store" if self.cached else "run  "
        return (f"[{self.index}/{self.total}] {self.campaign}: "
                f"{self.label:<32} {origin}  {self.execution_time:9.1f} s")


@dataclass
class CampaignPointResult:
    """One executed (or store-served) campaign point."""

    point: CampaignPoint
    key: str
    cached: bool
    result: object  # SimJobResult or StoredResult (same surface)


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: Campaign
    #: Successful points only (grid order); failures live in
    #: :attr:`outcomes` and the store's quarantine ledger.
    points: List[CampaignPointResult]
    #: Points simulated in this run (store misses).
    executed: int
    #: Points served from the disk store without simulating.
    from_store: int
    #: Points that exhausted their retries (quarantined).
    failed: int = 0
    #: Points never attempted (interrupt or fail-fast abort).
    skipped: int = 0
    #: Whether SIGINT/SIGTERM stopped the run early.
    interrupted: bool = False
    #: Per-point outcomes for every grid point, grid order.
    outcomes: List[PointOutcome] = field(default_factory=list)
    #: Per-stage wall-clock seconds (expand / store-lookup /
    #: shared-setup / simulate / record), also embedded in the
    #: campaign checkpoint; rendered by ``repro campaign run
    #: --profile``.
    profile: Dict[str, float] = field(default_factory=dict)
    #: Distinct simulations the batch planner ran for the cold points
    #: (< ``executed`` when equivalence classes collapsed; equals it in
    #: per-point mode).
    unique_simulations: int = 0
    #: Whether the batch (equivalence-class) scheduler ran.
    batched: bool = False
    #: Execution backend that simulated the cold points (``local`` or
    #: ``pool``).
    backend: str = "local"

    @property
    def completed(self) -> bool:
        """Whether every grid point produced a result."""
        return not self.failed and not self.skipped and not self.interrupted

    def sweep_result(self, variant: str = "", trial: int = 0) -> SweepResult:
        """One variant's size×network grid as a figure-shaped sweep."""
        rows = [
            SweepRow(
                benchmark=self.campaign.benchmark,
                network=p.result.interconnect_name,
                shuffle_gb=p.point.shuffle_gb,
                execution_time=p.result.execution_time,
                result=p.result,
            )
            for p in self.points
            if p.point.variant == variant and p.point.trial == trial
        ]
        if not rows:
            have = sorted({p.point.variant for p in self.points})
            raise KeyError(
                f"campaign {self.campaign.name!r} has no variant "
                f"{variant!r} (has: {have})"
            )
        return SweepResult(rows)

    def variants(self) -> List[str]:
        """Variant labels present, in campaign order."""
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.point.variant, None)
        return list(seen)


def run_campaign(
    campaign: Campaign,
    store: Optional[Union[ResultStore, str]] = None,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    policy: Optional[RetryPolicy] = None,
    fail_fast: bool = False,
    isolate: Optional[bool] = None,
    batch: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
    backend: Optional[ExecutionBackend] = None,
) -> CampaignResult:
    """Run every point of a campaign, skipping points already stored.

    With a ``store``, previously-computed points are served from disk
    (no simulation) and fresh points are recorded and tagged; without
    one the campaign still runs, just uncached. ``jobs > 1`` fans the
    misses over supervised worker processes with bit-identical results.

    ``policy`` configures per-point retries, exponential backoff and
    wall-clock timeouts; a point that exhausts its retries is recorded
    in the store's quarantine ledger and counted in ``failed`` — the
    campaign completes instead of raising. ``fail_fast=True`` aborts
    after the first quarantined point (the rest count as ``skipped``).
    SIGINT/SIGTERM interrupt gracefully: completed points are already
    durable in the store, a checkpoint is written, and the result comes
    back with ``interrupted=True``.

    ``batch=None`` lets the executor group the cold points into
    simulation-equivalence classes and simulate one representative per
    class (bit-identical store contents, large wall-clock wins on
    trial-heavy sweeps); ``batch=False`` forces the strict per-point
    loop, the oracle the batch path is benchmarked against.

    ``backend`` swaps the execution engine the misses run on: ``None``
    keeps the default in-process :class:`LocalBackend`; a
    :class:`~repro.campaign.pool.PoolBackend` fans them over a
    socket-connected worker pool with lease-based failover. A supplied
    backend is borrowed — the caller owns its lifecycle (``close()``).
    """
    if isinstance(store, str):
        store = ResultStore(store)
    suite = MicroBenchmarkSuite(
        cluster=campaign.cluster_spec(),
        jobconf=campaign.jobconf(),
        fault_plan=campaign.fault_plan,
        store=store,
    )
    expand_started = time.monotonic()
    points = campaign.points()
    expand_seconds = time.monotonic() - expand_started
    total = len(points)
    emitted = {"count": 0}

    def on_point(outcome: PointOutcome) -> None:
        """Adapt one executor outcome to a PointProgress event."""
        emitted["count"] += 1
        if progress is None:
            return
        execution_time = (outcome.result.execution_time
                          if outcome.result is not None else math.nan)
        progress(PointProgress(
            campaign=campaign.name,
            index=emitted["count"],
            total=total,
            label=outcome.label,
            key=outcome.key,
            cached=outcome.status == STATUS_CACHED,
            execution_time=execution_time,
            status=outcome.status,
            attempts=outcome.attempts,
        ))

    def point_meta(point: CampaignPoint) -> dict:
        """The campaign tag stamped onto one point's store record."""
        return {
            "figure": campaign.figure,
            "title": campaign.title,
            "benchmark": campaign.benchmark,
            "variant": point.variant,
            "shuffle_gb": point.shuffle_gb,
            "network": point.network,
            "trial": point.trial,
            "baseline": campaign.baseline or campaign.networks[0],
            "faulty": campaign.fault_plan is not None,
        }

    metas = [point_meta(point) for point in points]
    executor = CampaignExecutor(
        suite,
        policy=policy,
        jobs=jobs,
        fail_fast=fail_fast,
        isolate=isolate,
        batch=batch,
        tracer=tracer,
        progress=on_point,
        campaign=campaign.name,
        backend=backend,
    )
    executor.profile_base = {"expand": expand_seconds}
    # Replicated sibling records are written with their campaign tag in
    # place, so the tag pass below skips rewriting them.
    executor.tag_plan = (campaign.name, metas)
    report: ExecutionReport = executor.execute(
        [p.config for p in points], labels=[p.label() for p in points])

    tag_started = time.monotonic()
    out: List[CampaignPointResult] = []
    succeeded: List[tuple] = []
    for i, (point, outcome) in enumerate(zip(points, report.outcomes)):
        if not outcome.succeeded:
            continue
        succeeded.append((i, outcome))
        out.append(CampaignPointResult(
            point=point, key=outcome.key,
            cached=outcome.status == STATUS_CACHED,
            result=outcome.result,
        ))
    if store is not None:
        if report.batched:
            store.tag_many([
                (outcome.key, campaign.name, metas[i])
                for i, outcome in succeeded
            ])
        else:
            for i, outcome in succeeded:
                store.tag(outcome.key, campaign.name, metas[i])
    profile = dict(report.profile)
    profile["record"] = (profile.get("record", 0.0)
                         + time.monotonic() - tag_started)
    return CampaignResult(
        campaign=campaign,
        points=out,
        executed=report.executed,
        from_store=report.from_store,
        failed=report.failed,
        skipped=report.skipped,
        interrupted=report.interrupted,
        outcomes=list(report.outcomes),
        profile=profile,
        unique_simulations=report.unique_simulations,
        batched=report.batched,
        backend=report.backend,
    )
