"""Distributed campaign execution: the socket worker-pool coordinator.

:class:`PoolBackend` fans a campaign's cold point-units over a pool of
``repro worker`` processes — launched as local subprocesses
(``workers=N``), by hand, or over SSH on remote hosts (``workers=0``
plus the printed address; see ``docs/DISTRIBUTED.md``). Everything is
stdlib: a non-blocking listener, a :mod:`selectors` event loop, and
the length-prefixed pickle framing of :mod:`repro.campaign.wire`.

Fault tolerance is the point. Every dispatched unit is held under a
**lease** that the worker renews with heartbeats while it simulates:

* a worker that *dies* (SIGKILL, OOM, network partition → EOF) or
  goes *silent* past its lease is declared lost and its unit is
  **reassigned** to a live worker — an infrastructure failure is not
  the simulation's fault, so reassignment does not consume the unit's
  :class:`~repro.campaign.executor.RetryPolicy` budget (a
  ``reassign_limit`` stops pathological crash loops);
* a unit whose simulation *raises* on the worker fails through the
  exact same retry/backoff/quarantine path as the local backend;
* a unit that exceeds ``policy.timeout`` while its worker heartbeats
  on (a hung simulation, not a hung host) counts as a retryable
  attempt failure, and the stuck worker is dropped;
* SIGINT drains: no new dispatches, in-flight units get
  ``drain_timeout`` seconds to finish (their results are recorded),
  the rest checkpoint as skipped for ``repro campaign resume``.

Replays are idempotent by construction: the content-addressed store
writes the same bytes for the same point no matter which worker — or
how many workers — computed it, so a reassigned unit that was secretly
completed by its "dead" worker is a byte-identical no-op.

Active leases are mirrored into the store's lease ledger
(``repro store stats`` counts them) so an operator can see which hosts
hold which points mid-campaign; completed or quarantined units release
their lease.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.campaign.backend import (
    ExecutionBackend,
    ExecutionBackendError,
    ExecutionContext,
)
from repro.campaign.wire import (
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_OK,
    MSG_SHUTDOWN,
    MSG_UNIT,
    FrameDecoder,
    FrameError,
    send_message,
)

#: Default lease duration (seconds without a heartbeat before a
#: worker's unit is reassigned).
DEFAULT_LEASE_SECONDS = 15.0

#: Default budget for in-flight units to finish after SIGINT.
DEFAULT_DRAIN_TIMEOUT = 30.0

#: How long the coordinator tolerates having zero live workers while
#: units are outstanding before declaring the campaign unrunnable.
DEFAULT_CONNECT_TIMEOUT = 60.0

#: Worker losses one unit absorbs before they start counting as
#: ordinary attempt failures (crash-loop circuit breaker).
DEFAULT_REASSIGN_LIMIT = 3

#: Per-socket I/O timeout (bounds a blocking sendall to a stuck peer).
_IO_TIMEOUT = 30.0


@dataclass
class _Assignment:
    """One unit currently leased to one worker."""

    rep: int
    attempt: int      # 1-based policy attempt
    dispatches: int   # 0-based count of prior dispatches (chaos feed)
    token: tuple
    started: float
    lease_expires: float
    deadline: Optional[float]


@dataclass
class _PoolWorker:
    """One connected worker process."""

    sock: socket.socket
    ident: str
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    greeted: bool = False
    unit: Optional[_Assignment] = None


@dataclass
class _PendingUnit:
    """One unit awaiting (re)dispatch; ``ready_at`` implements backoff."""

    rep: int
    attempt: int
    dispatches: int
    ready_at: float = 0.0


class PoolBackend(ExecutionBackend):
    """Lease-based execution over a TCP pool of ``repro worker``s."""

    name = "pool"

    def __init__(
        self,
        bind: Tuple[str, int] = ("127.0.0.1", 0),
        workers: int = 0,
        lease: float = DEFAULT_LEASE_SECONDS,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        reassign_limit: int = DEFAULT_REASSIGN_LIMIT,
        spawn_env: Optional[Dict[str, str]] = None,
    ):
        """Configure (but don't yet bind) the coordinator.

        ``workers=N`` spawns N local ``repro worker`` subprocesses on
        first use; ``workers=0`` expects external workers to connect
        to :attr:`address` (print it with :meth:`ensure_started`).
        """
        if lease <= 0:
            raise ValueError(f"lease must be > 0, got {lease}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.bind = bind
        self.workers = workers
        self.lease = lease
        self.drain_timeout = drain_timeout
        self.connect_timeout = connect_timeout
        self.reassign_limit = reassign_limit
        self.spawn_env = dict(spawn_env) if spawn_env else {}
        self.counters: Dict[str, int] = {
            "workers_joined": 0, "workers_lost": 0, "dispatched": 0,
            "reassignments": 0, "leases_expired": 0, "timeouts": 0,
        }
        self._listener: Optional[socket.socket] = None
        self._sel: Optional[selectors.BaseSelector] = None
        self._conns: Dict[socket.socket, _PoolWorker] = {}
        self._procs: List[subprocess.Popen] = []
        self._losses: Dict[int, int] = {}
        self._epoch = 0

    # -- lifecycle ---------------------------------------------------------

    def ensure_started(self) -> None:
        """Bind the listener and spawn local workers (idempotent)."""
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self.bind)
        listener.listen(64)
        listener.setblocking(False)
        self._listener = listener
        self._sel = selectors.DefaultSelector()
        self._sel.register(listener, selectors.EVENT_READ, "listener")
        for _ in range(self.workers):
            self._spawn_worker()

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) workers connect to (binds on first call)."""
        self.ensure_started()
        host, port = self._listener.getsockname()[:2]
        return host, port

    def close(self) -> None:
        """Shut the pool down: ask workers to exit, reap subprocesses."""
        for worker in list(self._conns.values()):
            try:
                send_message(worker.sock, (MSG_SHUTDOWN,))
            except OSError:
                pass
            self._close_worker(worker)
        if self._listener is not None:
            try:
                self._sel.unregister(self._listener)
            except (KeyError, ValueError):  # pragma: no cover
                pass
            self._listener.close()
            self._listener = None
        if self._sel is not None:
            self._sel.close()
            self._sel = None
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stubborn
                proc.kill()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    pass
        self._procs = []

    def describe(self) -> dict:
        info = {"backend": self.name, "workers": self.workers,
                "lease_seconds": self.lease,
                "connected": len(self._conns)}
        if self._listener is not None:
            host, port = self._listener.getsockname()[:2]
            info["address"] = f"{host}:{port}"
        info.update(self.counters)
        return info

    # -- main loop ---------------------------------------------------------

    def run(self, ctx: ExecutionContext) -> None:
        self.ensure_started()
        self._epoch += 1
        self._losses = {}
        pending: List[_PendingUnit] = [
            _PendingUnit(unit[0], 1, 0) for unit in ctx.units
        ]
        active: Dict[int, _PoolWorker] = {}
        drain_deadline: Optional[float] = None
        no_worker_since = time.monotonic()
        while pending or active:
            now = time.monotonic()
            if ctx.should_stop():
                # Drain: nothing new launches; in-flight units get
                # drain_timeout seconds to land, then are abandoned
                # (checkpointed as skipped — resume re-runs them).
                pending = []
                if not active:
                    break
                if drain_deadline is None:
                    drain_deadline = now + self.drain_timeout
                elif now >= drain_deadline:
                    self._abandon(ctx, active)
                    break
            else:
                self._dispatch(ctx, pending, active, now)
            for key, _ in self._sel.select(0.05):
                if key.data == "listener":
                    self._accept()
                else:
                    self._read_worker(ctx, key.data, pending, active)
            now = time.monotonic()
            self._check_leases(ctx, pending, active, now)
            self._check_timeouts(ctx, pending, active, now)
            if self._conns:
                no_worker_since = now
            elif ((pending or active)
                  and now - no_worker_since > self.connect_timeout):
                raise ExecutionBackendError(
                    f"no live workers for {self.connect_timeout:g} s with "
                    f"{len(pending) + len(active)} unit(s) outstanding "
                    f"(listening on {self.address[0]}:{self.address[1]})")

    # -- dispatch ----------------------------------------------------------

    def _heartbeat_secs(self) -> float:
        """How often workers must heartbeat (4 beats per lease)."""
        return max(0.2, min(self.lease / 4.0, 5.0))

    def _dispatch(self, ctx: ExecutionContext,
                  pending: List[_PendingUnit],
                  active: Dict[int, _PoolWorker], now: float) -> None:
        while pending:
            worker = next(
                (w for w in self._conns.values()
                 if w.greeted and w.unit is None), None)
            if worker is None:
                return
            slot = next((p for p in pending if p.ready_at <= now), None)
            if slot is None:
                return
            pending.remove(slot)
            token = (self._epoch, slot.rep, slot.dispatches)
            try:
                send_message(worker.sock, (
                    MSG_UNIT, token, slot.rep, slot.dispatches,
                    self._heartbeat_secs(), ctx.payload(slot.rep)))
            except OSError as exc:
                pending.append(slot)
                self._worker_lost(ctx, worker, pending, active,
                                  f"send failed: {exc}")
                continue
            worker.unit = _Assignment(
                rep=slot.rep, attempt=slot.attempt,
                dispatches=slot.dispatches, token=token, started=now,
                lease_expires=now + self.lease,
                deadline=(now + ctx.policy.timeout
                          if ctx.policy.timeout is not None else None))
            active[slot.rep] = worker
            self.counters["dispatched"] += 1
            ctx.trace("dispatch", slot.rep, worker=worker.ident,
                      attempt=slot.attempt, dispatch=slot.dispatches)
            self._lease_write(ctx, worker)

    # -- socket events -----------------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover - listener torn down
                return
            conn.settimeout(_IO_TIMEOUT)
            worker = _PoolWorker(sock=conn, ident=f"{addr[0]}:{addr[1]}")
            self._conns[conn] = worker
            self._sel.register(conn, selectors.EVENT_READ, worker)

    def _read_worker(self, ctx: ExecutionContext, worker: _PoolWorker,
                     pending: List[_PendingUnit],
                     active: Dict[int, _PoolWorker]) -> None:
        try:
            data = worker.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError, socket.timeout):
            return
        except OSError:
            data = b""
        if not data:
            self._worker_lost(ctx, worker, pending, active,
                              "connection closed")
            return
        worker.decoder.feed(data)
        try:
            for message in worker.decoder.drain():
                self._handle_message(ctx, worker, message, pending, active)
                if worker.sock not in self._conns:
                    return  # dropped while handling
        except FrameError as exc:
            self._worker_lost(ctx, worker, pending, active,
                              f"protocol error: {exc}")

    def _handle_message(self, ctx: ExecutionContext, worker: _PoolWorker,
                        message, pending: List[_PendingUnit],
                        active: Dict[int, _PoolWorker]) -> None:
        tag = message[0]
        now = time.monotonic()
        if tag == MSG_HELLO:
            info = message[1] if len(message) > 1 else {}
            ident = info.get("worker") if isinstance(info, dict) else None
            if ident:
                worker.ident = str(ident)
            if not worker.greeted:
                worker.greeted = True
                self.counters["workers_joined"] += 1
            return
        if tag == MSG_HEARTBEAT:
            assignment = worker.unit
            if assignment is not None and assignment.token == message[1]:
                assignment.lease_expires = now + self.lease
            return
        if tag == MSG_OK:
            _tag, token, result = message
            assignment = self._claim(worker, token)
            if assignment is None:
                return  # stale (abandoned epoch); store stays correct
            active.pop(assignment.rep, None)
            wall = now - assignment.started
            ctx.add_profile("simulate", wall)
            ctx.complete(assignment.rep, result, assignment.attempt, wall,
                         record=True)
            self._lease_release(ctx, assignment.rep)
            return
        if tag == MSG_ERROR:
            _tag, token, error, tb = message
            assignment = self._claim(worker, token)
            if assignment is None:
                return
            active.pop(assignment.rep, None)
            delay = ctx.fail_attempt(
                assignment.rep, assignment.attempt, error, tb=tb,
                kind="error", worker=worker.ident,
                wall=now - assignment.started)
            if delay is not None:
                pending.append(_PendingUnit(
                    assignment.rep, assignment.attempt + 1,
                    assignment.dispatches + 1, now + delay))
            self._lease_release(ctx, assignment.rep)

    @staticmethod
    def _claim(worker: _PoolWorker, token) -> Optional[_Assignment]:
        """Match a result to the worker's assignment; drop stale ones."""
        assignment = worker.unit
        worker.unit = None
        if assignment is None or assignment.token != token:
            return None
        return assignment

    # -- liveness ----------------------------------------------------------

    def _check_leases(self, ctx: ExecutionContext,
                      pending: List[_PendingUnit],
                      active: Dict[int, _PoolWorker], now: float) -> None:
        for worker in list(self._conns.values()):
            assignment = worker.unit
            if assignment is not None and now >= assignment.lease_expires:
                self.counters["leases_expired"] += 1
                self._worker_lost(
                    ctx, worker, pending, active,
                    f"lease expired after {self.lease:g} s without a "
                    f"heartbeat", expired=True)

    def _check_timeouts(self, ctx: ExecutionContext,
                        pending: List[_PendingUnit],
                        active: Dict[int, _PoolWorker], now: float) -> None:
        """Enforce policy.timeout on heartbeating-but-hung simulations."""
        if ctx.policy.timeout is None:
            return
        for worker in list(self._conns.values()):
            assignment = worker.unit
            if (assignment is None or assignment.deadline is None
                    or now < assignment.deadline):
                continue
            worker.unit = None
            active.pop(assignment.rep, None)
            self.counters["timeouts"] += 1
            if worker.greeted:
                self.counters["workers_lost"] += 1
            ident = worker.ident
            self._close_worker(worker)
            ctx.trace("timeout", assignment.rep, attempt=assignment.attempt,
                      timeout=ctx.policy.timeout)
            delay = ctx.fail_attempt(
                assignment.rep, assignment.attempt,
                f"point timed out after {ctx.policy.timeout:g} s "
                f"(attempt {assignment.attempt})", kind="timeout",
                worker=ident, wall=now - assignment.started)
            if delay is not None:
                pending.append(_PendingUnit(
                    assignment.rep, assignment.attempt + 1,
                    assignment.dispatches + 1, now + delay))
            self._lease_release(ctx, assignment.rep)

    def _worker_lost(self, ctx: ExecutionContext, worker: _PoolWorker,
                     pending: List[_PendingUnit],
                     active: Dict[int, _PoolWorker], reason: str,
                     expired: bool = False) -> None:
        """Drop a dead/silent worker; reassign its unit to the pool.

        Reassignment is free with respect to the retry policy — the
        simulation never got to fail — until the unit has burned
        through ``reassign_limit`` workers, after which further losses
        count as attempt failures (retry/backoff/quarantine as usual).
        """
        assignment = worker.unit
        worker.unit = None
        if worker.greeted:
            self.counters["workers_lost"] += 1
        self._close_worker(worker)
        if assignment is None:
            return
        active.pop(assignment.rep, None)
        self._lease_release(ctx, assignment.rep)
        if ctx.should_stop():
            return  # draining: the unit checkpoints as skipped
        now = time.monotonic()
        kind = "lease-expired" if expired else "worker-lost"
        losses = self._losses.get(assignment.rep, 0) + 1
        self._losses[assignment.rep] = losses
        if losses > self.reassign_limit:
            delay = ctx.fail_attempt(
                assignment.rep, assignment.attempt,
                f"unit lost its worker {losses} times (last: {reason})",
                kind=kind, worker=worker.ident,
                wall=now - assignment.started)
            if delay is not None:
                pending.append(_PendingUnit(
                    assignment.rep, assignment.attempt + 1,
                    assignment.dispatches + 1, now + delay))
            return
        ctx.note(assignment.rep, assignment.attempt, kind, reason,
                 worker=worker.ident, wall=now - assignment.started)
        self.counters["reassignments"] += 1
        ctx.trace("reassign", assignment.rep, worker=worker.ident,
                  reason=reason, dispatch=assignment.dispatches + 1)
        pending.append(_PendingUnit(
            assignment.rep, assignment.attempt,
            assignment.dispatches + 1, now))

    def _abandon(self, ctx: ExecutionContext,
                 active: Dict[int, _PoolWorker]) -> None:
        """Give up on in-flight units at the drain deadline."""
        for rep, worker in list(active.items()):
            worker.unit = None  # a late result is dropped as stale
            ctx.trace("abandon", rep, worker=worker.ident,
                      reason="drain timeout")
            self._lease_release(ctx, rep)
        active.clear()

    def _close_worker(self, worker: _PoolWorker) -> None:
        self._conns.pop(worker.sock, None)
        try:
            self._sel.unregister(worker.sock)
        except (KeyError, ValueError):
            pass
        try:
            worker.sock.close()
        except OSError:  # pragma: no cover
            pass

    # -- lease ledger ------------------------------------------------------

    def _lease_write(self, ctx: ExecutionContext,
                     worker: _PoolWorker) -> None:
        store = ctx.store
        if store is None:
            return
        assignment = worker.unit
        try:
            store.lease_update(ctx.key(assignment.rep), {
                "campaign": ctx.campaign,
                "label": ctx.label(assignment.rep),
                "worker": worker.ident,
                "attempt": assignment.attempt,
                "dispatch": assignment.dispatches,
                "acquired_at": time.time(),
                "expires_at": time.time() + self.lease,
            })
        except OSError:  # pragma: no cover - degraded store
            pass

    def _lease_release(self, ctx: ExecutionContext, rep: int) -> None:
        store = ctx.store
        if store is None:
            return
        try:
            store.lease_release([ctx.key(rep)])
        except OSError:  # pragma: no cover - degraded store
            pass

    # -- local worker subprocesses -----------------------------------------

    def _spawn_worker(self) -> None:
        """Launch one local ``repro worker`` subprocess."""
        import repro

        host, port = self.address
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env = os.environ.copy()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (package_root if not existing
                             else package_root + os.pathsep + existing)
        env.update(self.spawn_env)
        self._procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro.campaign.worker",
             "--connect", f"{host}:{port}"],
            env=env, stdout=subprocess.DEVNULL))
