"""Declarative campaign specifications.

A *campaign* is the unit the paper's evaluation is made of: one
benchmark swept over shuffle sizes × networks (× optional parameter
variants × trials) on one cluster/runtime, optionally under a fault
plan. The ``bench_fig*.py`` scripts used to hand-roll these loops;
:class:`Campaign` makes them data — loadable from TOML or JSON,
expandable to the exact :class:`~repro.core.config.BenchmarkConfig`
grid, and executable through :func:`repro.campaign.runner.run_campaign`
with per-point store skip-on-hit.

A JSON spec looks like::

    {
      "name": "fig2a",
      "figure": "Fig. 2(a)",
      "title": "MR-AVG job execution time, Cluster A MRv1",
      "benchmark": "MR-AVG",
      "shuffle_gbs": [4.0, 8.0, 16.0, 32.0],
      "networks": ["1GigE", "10GigE", "ipoib-qdr"],
      "cluster": "a", "slaves": 4, "runtime": "mrv1",
      "params": {"num_maps": 16, "num_reduces": 8,
                 "key_size": 512, "value_size": 512},
      "variants": [{"label": "100B", "key_size": 50, "value_size": 50}],
      "trials": 1,
      "fault_plan": {"node_crashes": [{"node": "slave1", "at_time": 30}]}
    }

The TOML form is field-for-field identical (``[params]`` table,
``[[variants]]`` array of tables). A file may hold one campaign object
or ``{"campaigns": [...]}``. TOML needs :mod:`tomllib` (Python 3.11+);
JSON always works.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.benchmarks import get_benchmark
from repro.core.config import BenchmarkConfig
from repro.faults import FaultPlan
from repro.hadoop.cluster import ClusterSpec, cluster_a, cluster_b
from repro.hadoop.job import JobConf
from repro.hadoop.runtime import available_runtimes

#: Seed stride between trials (matches ``MicroBenchmarkSuite.run_trials``).
TRIAL_SEED_STRIDE = 9973


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-expanded grid point of a campaign."""

    campaign: str
    variant: str
    shuffle_gb: float
    network: str
    trial: int
    config: BenchmarkConfig

    def label(self) -> str:
        """Human-readable point coordinates for progress lines."""
        parts = [f"{self.shuffle_gb:g}GB", self.network]
        if self.variant:
            parts.insert(0, self.variant)
        if self.trial:
            parts.append(f"trial{self.trial}")
        return " ".join(parts)


@dataclass(frozen=True)
class Campaign:
    """A declarative, reproducible parameter sweep."""

    name: str
    shuffle_gbs: Tuple[float, ...]
    networks: Tuple[str, ...]
    benchmark: str = "MR-AVG"
    #: Paper figure this campaign reproduces (Experiment Book heading).
    figure: str = ""
    #: Free-text title for tables and book pages.
    title: str = ""
    #: ``"a"`` (Westmere) or ``"b"`` (Stampede).
    cluster: str = "a"
    #: Slave count; ``None`` keeps the testbed default.
    slaves: Optional[int] = None
    #: Runtime generation (``mrv1``/``yarn``), from the registry.
    runtime: str = "mrv1"
    #: Extra :class:`BenchmarkConfig` kwargs applied to every point.
    params: Dict[str, object] = field(default_factory=dict, hash=False)
    #: Named parameter overlays, each crossed with the size×network
    #: grid. Every dict needs a ``"label"``; other keys override
    #: ``params``. Empty means one anonymous variant.
    variants: Tuple[Dict[str, object], ...] = ()
    #: Seed-varied repetitions per point (seed + trial * 9973).
    trials: int = 1
    #: Fault plan applied to every point (``None`` = healthy).
    fault_plan: Optional[FaultPlan] = None
    #: Baseline network for improvement summaries (default: first).
    baseline: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate field values as soon as the campaign is built."""
        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.shuffle_gbs:
            raise ValueError(f"campaign {self.name!r} has no shuffle_gbs")
        if not self.networks:
            raise ValueError(f"campaign {self.name!r} has no networks")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.cluster not in ("a", "b"):
            raise ValueError(
                f"cluster must be 'a' or 'b', got {self.cluster!r}"
            )
        if self.runtime not in available_runtimes():
            raise ValueError(
                f"runtime must be one of {available_runtimes()}, "
                f"got {self.runtime!r}"
            )
        get_benchmark(self.benchmark)  # raises KeyError on unknown names
        for variant in self.variants:
            if not variant.get("label"):
                raise ValueError(
                    f"campaign {self.name!r}: every variant needs a 'label'"
                )

    # -- expansion ---------------------------------------------------------

    def cluster_spec(self) -> ClusterSpec:
        """The testbed this campaign runs on."""
        factory = cluster_a if self.cluster == "a" else cluster_b
        return factory(self.slaves) if self.slaves else factory()

    def jobconf(self) -> JobConf:
        """The framework configuration (runtime generation)."""
        return JobConf(version=self.runtime)

    def points(self) -> List[CampaignPoint]:
        """The fully-expanded grid, in deterministic order.

        Order: variant → shuffle size → network → trial (the same
        nesting the figure tables use).
        """
        pattern = get_benchmark(self.benchmark).pattern
        variants = self.variants or ({"label": ""},)
        out: List[CampaignPoint] = []
        for variant in variants:
            overrides = {k: v for k, v in variant.items() if k != "label"}
            kwargs = dict(self.params, **overrides)
            base_seed = kwargs.pop("seed", None)
            for size in self.shuffle_gbs:
                for network in self.networks:
                    for trial in range(self.trials):
                        seed_kwargs = dict(kwargs)
                        if base_seed is not None or trial:
                            seed = ((base_seed if base_seed is not None
                                     else BenchmarkConfig.seed)
                                    + trial * TRIAL_SEED_STRIDE)
                            seed_kwargs["seed"] = seed
                        config = BenchmarkConfig.from_shuffle_size(
                            size * 1e9, pattern=pattern, network=network,
                            **seed_kwargs)
                        out.append(CampaignPoint(
                            campaign=self.name,
                            variant=str(variant["label"]),
                            shuffle_gb=size,
                            network=network,
                            trial=trial,
                            config=config,
                        ))
        return out

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict spec (inverse of :meth:`from_dict`)."""
        out: Dict[str, object] = {
            "name": self.name,
            "benchmark": self.benchmark,
            "shuffle_gbs": list(self.shuffle_gbs),
            "networks": list(self.networks),
            "cluster": self.cluster,
            "runtime": self.runtime,
            "trials": self.trials,
        }
        if self.figure:
            out["figure"] = self.figure
        if self.title:
            out["title"] = self.title
        if self.slaves is not None:
            out["slaves"] = self.slaves
        if self.params:
            out["params"] = dict(self.params)
        if self.variants:
            out["variants"] = [dict(v) for v in self.variants]
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan.to_dict()
        if self.baseline is not None:
            out["baseline"] = self.baseline
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Campaign":
        """Build a campaign from a spec dict; friendly errors."""
        if not isinstance(data, dict):
            raise ValueError(
                f"campaign spec must be an object, got {type(data).__name__}"
            )
        known = {
            "name", "figure", "title", "benchmark", "shuffle_gbs",
            "networks", "cluster", "slaves", "runtime", "params",
            "variants", "trials", "fault_plan", "baseline",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(data)
        kwargs["shuffle_gbs"] = tuple(
            float(s) for s in data.get("shuffle_gbs", ())
        )
        kwargs["networks"] = tuple(data.get("networks", ()))
        if "params" in kwargs:
            kwargs["params"] = dict(kwargs["params"])
        if "variants" in kwargs:
            kwargs["variants"] = tuple(dict(v) for v in kwargs["variants"])
        if kwargs.get("fault_plan") is not None:
            kwargs["fault_plan"] = FaultPlan.from_dict(kwargs["fault_plan"])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValueError(f"malformed campaign spec: {exc}") from None


def _parse_spec_text(text: str, suffix: str, source: str) -> dict:
    """Parse TOML or JSON spec text into a plain dict."""
    if suffix in (".toml", ".tml"):
        try:
            import tomllib
        except ImportError:  # Python < 3.11
            raise ValueError(
                f"cannot load TOML campaign {source}: tomllib needs "
                f"Python 3.11+ (use the JSON form instead)"
            ) from None
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"invalid TOML in {source}: {exc}") from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON in {source}: {exc}") from None


def load_campaigns(path: Union[str, Path]) -> List[Campaign]:
    """Load one or many campaigns from a ``.json`` or ``.toml`` file.

    The file holds either a single campaign object or a
    ``{"campaigns": [...]}`` collection (same for TOML, with
    ``[[campaigns]]``).
    """
    path = Path(path)
    data = _parse_spec_text(path.read_text(), path.suffix.lower(), str(path))
    entries = data.get("campaigns") if isinstance(data, dict) else None
    if entries is None:
        entries = [data]
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: expected a campaign or a 'campaigns' list")
    return [Campaign.from_dict(entry) for entry in entries]


def load_campaign(path: Union[str, Path], name: Optional[str] = None) -> Campaign:
    """Load one campaign; ``name`` picks from a multi-campaign file."""
    campaigns = load_campaigns(path)
    if name is None:
        if len(campaigns) > 1:
            raise ValueError(
                f"{path} holds {len(campaigns)} campaigns "
                f"({', '.join(c.name for c in campaigns)}); pass name="
            )
        return campaigns[0]
    for campaign in campaigns:
        if campaign.name == name:
            return campaign
    raise KeyError(
        f"no campaign {name!r} in {path} "
        f"(has: {', '.join(c.name for c in campaigns)})"
    )
