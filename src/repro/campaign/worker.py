"""The ``repro worker`` process: one member of a distributed pool.

A worker dials a :class:`~repro.campaign.pool.PoolBackend` coordinator
(``repro worker --connect HOST:PORT`` or ``python -m
repro.campaign.worker``), introduces itself, then loops: receive a
point-unit, simulate it through the same
:func:`~repro.core.suite._run_point` entry the local
``multiprocessing`` path uses, ship the result (or the exception)
back. While a unit simulates, a daemon thread heartbeats every
``heartbeat_secs`` so the coordinator keeps the unit's lease alive;
simulation is deterministic, so whichever worker ends up computing a
point produces the same bytes.

Graceful shutdown: SIGINT/SIGTERM set a drain flag — an idle worker
exits immediately, a busy one finishes its unit, sends the result, and
exits. The exit code is 130, mirroring ``repro campaign run``'s
interrupted convention. A closed coordinator connection is a normal
exit (code 0), as is a ``shutdown`` message.

Chaos hooks: the worker honours the same env-gated sabotage switches
as local supervised children (``REPRO_CHAOS_CRASH`` / ``_HANG`` /
``_ATTEMPTS``, keyed by the *dispatch* counter so a reassigned unit
demonstrably recovers), plus ``REPRO_CHAOS_MUTE=<point-index>``: the
worker goes silent — no heartbeats, no result — so lease-expiry
failover is testable without SIGSTOP gymnastics.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
import traceback
from typing import Optional

from repro.campaign.backend import (
    ENV_CHAOS_HANG_SECS,
    ENV_CHAOS_MUTE,
    _chaos_attempts,
    _chaos_hook,
)
from repro.campaign.wire import (
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_OK,
    MSG_SHUTDOWN,
    MSG_UNIT,
    ConnectionClosed,
    recv_message,
    send_message,
)
from repro.core.suite import _run_point

#: Exit code when a signal drained the worker (mirrors campaign run).
EXIT_INTERRUPTED = 130

_busy = False
_draining = False


def _on_signal(signum, frame) -> None:
    """Drain: finish the in-flight unit, then exit; idle exits now."""
    global _draining
    _draining = True
    if not _busy:
        raise KeyboardInterrupt


def _should_mute(index: int, dispatch0: int) -> bool:
    """Whether the mute chaos hook silences this dispatch."""
    if os.environ.get(ENV_CHAOS_MUTE) != str(index):
        return False
    return dispatch0 < _chaos_attempts()


def _heartbeat_loop(sock, lock: threading.Lock, token, interval: float,
                    stop: threading.Event) -> None:
    """Renew the unit's lease until the simulation finishes."""
    while not stop.wait(interval):
        try:
            with lock:
                send_message(sock, (MSG_HEARTBEAT, token))
        except OSError:
            return


def _execute_unit(sock, lock: threading.Lock, message) -> None:
    """Simulate one dispatched unit and report its outcome."""
    _tag, token, index, dispatch0, heartbeat_secs, payload = message
    if _should_mute(index, dispatch0):
        # Chaos: go dark. No heartbeats, no result — the coordinator
        # must expire the lease and reassign the unit elsewhere.
        time.sleep(float(os.environ.get(ENV_CHAOS_HANG_SECS, "3600")))
        return
    stop = threading.Event()
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(sock, lock, token, heartbeat_secs, stop),
        name="repro-worker-heartbeat", daemon=True)
    beater.start()
    try:
        _chaos_hook(index, dispatch0)
        result = _run_point(payload)
        reply = (MSG_OK, token, result)
    except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
        reply = (MSG_ERROR, token, f"{type(exc).__name__}: {exc}",
                 traceback.format_exc())
    finally:
        stop.set()
        beater.join(timeout=5.0)
    with lock:
        send_message(sock, reply)


def run_worker(host: str, port: int,
               connect_timeout: float = 30.0) -> int:
    """Serve units from one coordinator until told (or made) to stop."""
    global _busy, _draining
    _busy = False
    _draining = False
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(None)
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - not main thread
            pass
    lock = threading.Lock()
    ident = f"{socket.gethostname()}:{os.getpid()}"
    try:
        with lock:
            send_message(sock, (MSG_HELLO, {"worker": ident,
                                            "pid": os.getpid()}))
        while True:
            if _draining:
                return EXIT_INTERRUPTED
            try:
                message = recv_message(sock)
            except KeyboardInterrupt:
                return EXIT_INTERRUPTED
            except ConnectionClosed:
                return 0
            tag = message[0]
            if tag == MSG_SHUTDOWN:
                return 0
            if tag != MSG_UNIT:
                continue  # forward-compatible: ignore unknown frames
            _busy = True
            try:
                _execute_unit(sock, lock, message)
            finally:
                _busy = False
            if _draining:
                return EXIT_INTERRUPTED
    except (ConnectionClosed, BrokenPipeError):
        return 0
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass


def _parse_endpoint(text: str) -> tuple:
    """Split HOST:PORT (host may be omitted → localhost)."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"expected HOST:PORT (e.g. 127.0.0.1:7077), got {text!r}")
    return host or "127.0.0.1", int(port)


def main(argv: Optional[list] = None) -> int:
    """CLI entry: ``repro worker`` / ``python -m repro.campaign.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Join a distributed campaign worker pool.")
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address printed by repro campaign run "
             "--backend pool")
    parser.add_argument(
        "--connect-timeout", type=float, default=30.0, metavar="SEC",
        help="give up if the coordinator is unreachable (default: 30)")
    args = parser.parse_args(argv)
    try:
        host, port = _parse_endpoint(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return run_worker(host, port, connect_timeout=args.connect_timeout)
    except (OSError, ConnectionClosed) as exc:
        print(f"error: worker lost the coordinator: {exc}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
