"""Batch execution planning: equivalence classes over campaign points.

A campaign expands into hundreds or thousands of points, but the
simulation consumes only a small projection of each point's config:
the resolved interconnect, the task counts, the record size, and the
shuffle matrix (plus the config seed when failure coins are armed —
see below). Points that agree on that projection — different trials of
a seed-independent MR-AVG sweep, alias spellings of the same network,
data-type variants with equal record sizes — are *simulation
equivalent*: the discrete-event run is bit-for-bit the same.

:func:`plan_batches` groups a campaign's cold points by that
projection (:func:`residue_signature`). The executor then simulates
one *representative* per group and replicates its stored result onto
the group's other members (:func:`replicate_result`), with each
sibling keeping its own config, store key, and provenance — so the
store's contents are byte-identical to what the per-point loop writes,
only cheaper to produce.

The seed rule
-------------
``BenchmarkConfig.seed`` reaches the simulation through exactly two
doors: the shuffle matrix (captured by
:func:`~repro.core.matrix.matrix_cache_key`, which already normalizes
the seed away for MR-AVG) and the jobconf-level failure coins
(``attempt_fails``), which return immediately when
``task_failure_probability == 0``. A campaign-level
:class:`~repro.faults.FaultPlan` draws from its *own* seed, not the
config's — but plans change execution, so any non-noop suite plan
keeps the config seed in the signature as conservative insurance. The
full contract is documented in ``docs/MODEL.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.core.config import BenchmarkConfig
from repro.core.matrix import EXACT_LIMIT, matrix_cache_key
from repro.hadoop.job import DEFAULT_JOB_CONF
from repro.net.interconnect import canonical_name
from repro.store.records import StoredResult

__all__ = [
    "BatchPlan",
    "ResidueGroup",
    "plan_batches",
    "replicate_result",
    "residue_signature",
]


def residue_signature(suite, config: BenchmarkConfig,
                      exact_limit: int = EXACT_LIMIT) -> tuple:
    """The projection of ``config`` the simulation actually consumes.

    Two configs with equal signatures (under the same suite — same
    cluster, jobconf, cost model, fault plan) produce bit-identical
    :class:`~repro.hadoop.result.SimJobResult` timing/stats payloads;
    only config-echo fields (pattern label, data type, seed...) differ,
    and those are carried by each point's own config.
    """
    signature = (
        canonical_name(config.network),
        config.num_maps,
        config.num_reduces,
        config.record_size,
        matrix_cache_key(config, exact_limit),
    )
    jobconf = suite.jobconf if suite.jobconf is not None else DEFAULT_JOB_CONF
    armed = jobconf.task_failure_probability > 0.0
    plan = suite.fault_plan
    if plan is not None and not plan.is_noop():
        armed = True
    if armed:
        signature = signature + (config.seed,)
    return signature


@dataclass(frozen=True)
class ResidueGroup:
    """One equivalence class of a batch plan.

    ``members`` are indices into the planned config list, in
    first-touch order; ``members[0]`` is the representative that
    actually simulates.
    """

    signature: tuple
    members: Tuple[int, ...]

    @property
    def representative(self) -> int:
        """Index of the member whose simulation stands for the group."""
        return self.members[0]


@dataclass(frozen=True)
class BatchPlan:
    """The grouped execution plan for one campaign's cold points."""

    groups: Tuple[ResidueGroup, ...]
    points: int

    @property
    def unique(self) -> int:
        """Number of simulations the plan actually runs."""
        return len(self.groups)

    @property
    def collapsed(self) -> int:
        """Number of points served by a sibling's simulation."""
        return self.points - self.unique


def plan_batches(suite, configs: Sequence[BenchmarkConfig],
                 pending: Sequence[int]) -> BatchPlan:
    """Group the pending point indices into simulation-equivalence
    classes.

    Groups (and members within a group) come out in first-touch order
    over ``pending``, so batch execution visits points in the same
    deterministic order as the per-point loop.
    """
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for i in pending:
        signature = residue_signature(suite, configs[i])
        members = groups.get(signature)
        if members is None:
            groups[signature] = [i]
            order.append(signature)
        else:
            members.append(i)
    return BatchPlan(
        groups=tuple(
            ResidueGroup(signature=sig, members=tuple(groups[sig]))
            for sig in order
        ),
        points=len(pending),
    )


def replicate_result(result, config: BenchmarkConfig) -> StoredResult:
    """A sibling's record: the representative's result under the
    sibling's own config.

    The returned :class:`~repro.store.StoredResult` is byte-identical
    to what simulating the sibling directly would have stored (floats
    round-trip through ``repr`` exactly; every other payload field is
    signature-determined).
    """
    stored = (result if isinstance(result, StoredResult)
              else StoredResult.from_sim_result(result))
    return replace(stored, config=config)
