"""Pluggable execution substrates for the campaign executor.

:class:`~repro.campaign.executor.CampaignExecutor` owns campaign
*semantics* — store lookup, batch planning, retry/backoff policy,
quarantine, checkpoints, progress, tracing. *Where* a cold point-unit
actually simulates is delegated to an :class:`ExecutionBackend`:

* :class:`LocalBackend` — the default; runs units inline (fast path)
  or in supervised ``multiprocessing`` workers on this host. This is
  byte-for-byte the pre-protocol executor behavior.
* :class:`~repro.campaign.pool.PoolBackend` — a stdlib-socket worker
  pool: ``repro worker --connect HOST:PORT`` processes (local, SSH'd,
  or hand-launched on remote hosts) claim units under leases with
  heartbeats; a dead or silent worker gets its unit reassigned to a
  live one instead of quarantined (see ``docs/DISTRIBUTED.md``).

Backends drive everything through an :class:`ExecutionContext`, the
narrow waist the executor hands to :meth:`ExecutionBackend.run`. The
context exposes the unit list and per-point payloads, and routes every
outcome back through the executor — so retries, backoff jitter,
quarantine (with per-attempt history), replication of batch siblings,
progress and trace markers behave identically on every substrate.

Chaos hooks (tests / CI stress + distributed jobs only)
-------------------------------------------------------
Worker processes — local supervised children and pool workers alike —
honour env-gated sabotage hooks so failure paths are exercisable
without patching production code: ``REPRO_CHAOS_CRASH=<point-index>``
makes the worker SIGKILL itself, ``REPRO_CHAOS_HANG=<point-index>``
makes it sleep ``$REPRO_CHAOS_HANG_SECS`` (default 3600) while still
heartbeating, and ``REPRO_CHAOS_MUTE=<point-index>`` makes a pool
worker go silent (no heartbeats) so its lease expires.
``REPRO_CHAOS_ATTEMPTS=<n>`` limits the sabotage to the first *n*
dispatches of that point (default 1, so a retry or a reassigned
dispatch demonstrably recovers).
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.suite import _run_point

#: Chaos hooks (see module docstring). Test/CI surface, env-gated.
ENV_CHAOS_CRASH = "REPRO_CHAOS_CRASH"
ENV_CHAOS_HANG = "REPRO_CHAOS_HANG"
ENV_CHAOS_HANG_SECS = "REPRO_CHAOS_HANG_SECS"
ENV_CHAOS_ATTEMPTS = "REPRO_CHAOS_ATTEMPTS"
ENV_CHAOS_MUTE = "REPRO_CHAOS_MUTE"

#: Point outcome statuses (shared by the executor and all backends).
STATUS_OK = "ok"            #: simulated this run
STATUS_CACHED = "cached"    #: served from memo cache / disk store
STATUS_FAILED = "failed"    #: exhausted retries; quarantined
STATUS_SKIPPED = "skipped"  #: never ran (interrupt or fail-fast abort)


def _chaos_hooks_enabled() -> bool:
    """Whether any env-gated chaos hook is armed (forces isolation)."""
    return bool(os.environ.get(ENV_CHAOS_CRASH)
                or os.environ.get(ENV_CHAOS_HANG)
                or os.environ.get(ENV_CHAOS_MUTE))


def _chaos_attempts() -> int:
    """How many dispatches of the targeted point misbehave."""
    try:
        return int(os.environ.get(ENV_CHAOS_ATTEMPTS, "1"))
    except ValueError:
        return 1


def _chaos_hook(index: int, attempt0: int) -> None:
    """Sabotage this worker if the chaos env vars target it.

    ``attempt0`` is zero-based (the pool passes its per-unit dispatch
    counter, so reassigned dispatches count too); by default only the
    first dispatch of the targeted point misbehaves, so retries and
    reassignments demonstrably recover.
    """
    if attempt0 >= _chaos_attempts():
        return
    if os.environ.get(ENV_CHAOS_CRASH) == str(index):
        os.kill(os.getpid(), signal.SIGKILL)
    if os.environ.get(ENV_CHAOS_HANG) == str(index):
        time.sleep(float(os.environ.get(ENV_CHAOS_HANG_SECS, "3600")))


def _child_main(conn, payload: tuple, index: int, attempt0: int) -> None:
    """Worker-process entry: simulate one point, ship the result back.

    The parent owns shutdown: SIGINT is ignored (the parent decides
    what dies) and SIGTERM is restored to its default action so
    ``terminate()`` always works even though the parent's graceful
    handler was inherited across ``fork``.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        _chaos_hook(index, attempt0)
        result = _run_point(payload)
    except BaseException as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - parent gone
            pass
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    except (OSError, ValueError):  # pragma: no cover - parent gone
        pass
    finally:
        conn.close()


class ExecutionContext:
    """One execute pass's view of the executor, as backends see it.

    The context is the only surface a backend touches: it yields the
    cold units, hands out picklable payloads, and funnels results and
    failures back through the executor so policy (retry, backoff
    jitter, quarantine with attempt history, replication, progress,
    tracing, profiling) is applied identically on every substrate.
    """

    def __init__(self, executor, configs, outcomes,
                 units: List[Tuple[int, ...]]):
        self._executor = executor
        self.configs = configs
        self.outcomes = outcomes
        #: Cold units (tuples of point indices; first member simulates,
        #: the rest replicate from its result).
        self.units = units
        self.policy = executor.policy
        self.suite = executor.suite
        self.campaign = executor.campaign
        #: Per-representative attempt history (quarantine ledger feed).
        self._history: Dict[int, List[dict]] = {}

    # -- introspection -----------------------------------------------------

    @property
    def store(self):
        """The suite's result store (None for uncached campaigns)."""
        return self.suite.store

    def key(self, index: int) -> str:
        """The store key of one grid point."""
        return self.outcomes[index].key

    def label(self, index: int) -> str:
        """The human label of one grid point."""
        return self.outcomes[index].label

    def unit_of(self, rep: int) -> Tuple[int, ...]:
        """The equivalence-class unit a representative stands for."""
        return self._executor._unit_of.get(rep, (rep,))

    def should_stop(self) -> bool:
        """Whether the pass was interrupted (signal / fail-fast)."""
        return (self._executor._stop_signal is not None
                or self._executor._abort)

    # -- work --------------------------------------------------------------

    def payload(self, index: int) -> tuple:
        """One point's picklable simulation payload."""
        return self.suite.point_payload(self.configs[index])

    def simulate(self, index: int):
        """Simulate one point in-process (through suite wrappers)."""
        return self.suite.simulate_point(self.configs[index])

    # -- outcome routing ---------------------------------------------------

    def interrupt(self, signum: int = signal.SIGINT) -> None:
        """Record an interruption (the backend saw SIGINT/KI)."""
        self._executor._stop_signal = signum

    def complete(self, rep: int, result, attempt: int, wall: float,
                 record: bool = False) -> None:
        """Seal one successful unit: finish, replicate, progress.

        ``record=True`` writes the result to the store first — for
        results that arrived from another process (the inline path
        already recorded through ``suite.simulate_point``).
        """
        executor = self._executor
        if record:
            self.suite.record_point(self.configs[rep], result)
        executor._finish(self.outcomes[rep], STATUS_OK, result=result,
                         attempts=attempt, wall=wall)
        unit = self.unit_of(rep)
        if len(unit) > 1:
            stage_started = time.monotonic()
            executor._replicate(self.configs, self.outcomes, unit, result,
                                attempt, wall)
            executor.profile["record"] += time.monotonic() - stage_started

    def fail_attempt(self, rep: int, attempt: int, error: str,
                     tb: Optional[str] = None, kind: str = "error",
                     worker: Optional[str] = None, wall: float = 0.0,
                     total_wall: Optional[float] = None) -> Optional[float]:
        """Route one failed attempt: backoff-retry or quarantine.

        Appends the attempt to the unit's history, then either returns
        the (jittered) backoff delay before the next attempt — the
        backend owns re-dispatch — or quarantines every member of the
        unit (history included in the ledger entry) and returns None.
        """
        self.note(rep, attempt, kind, error, worker=worker, wall=wall)
        executor = self._executor
        outcome = self.outcomes[rep]
        if attempt <= self.policy.retries and not self.should_stop():
            delay = self.policy.delay(attempt, key=outcome.key)
            executor._trace("retry", outcome.label, point=rep,
                            attempt=attempt, error=error, delay=delay)
            return delay
        final_wall = wall if total_wall is None else total_wall
        for i in self.unit_of(rep):
            executor._finish(self.outcomes[i], STATUS_FAILED,
                             attempts=attempt, error=error, tb=tb,
                             wall=final_wall, history=self.history(rep))
        return None

    # -- history / telemetry ----------------------------------------------

    def history(self, rep: int) -> List[dict]:
        """The (mutable) attempt history of one unit representative."""
        return self._history.setdefault(rep, [])

    def note(self, rep: int, attempt: int, kind: str, error: str,
             worker: Optional[str] = None, wall: float = 0.0) -> dict:
        """Append one event to a unit's attempt history."""
        entry = {
            "attempt": attempt,
            "kind": kind,
            "error": error,
            "worker": worker,
            "wall_time": round(wall, 6),
            "at": time.time(),
        }
        self.history(rep).append(entry)
        return entry

    def trace(self, name: str, index: int, **args) -> None:
        """Emit one CAT_HARNESS marker on the point's label lane."""
        self._executor._trace(name, self.outcomes[index].label,
                              point=index, **args)

    def add_profile(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock seconds into one profile stage."""
        profile = self._executor.profile
        profile[stage] = profile.get(stage, 0.0) + seconds


class ExecutionBackendError(RuntimeError):
    """The execution substrate itself failed (not a per-point error).

    Raised for campaign-fatal infrastructure conditions — e.g. a pool
    coordinator whose last worker died with units outstanding and no
    replacement connected within the connect timeout.
    """


class ExecutionBackend(abc.ABC):
    """Where cold point-units run; the executor supplies the policy."""

    #: Short name surfaced in reports, stats and checkpoints.
    name = "backend"

    @abc.abstractmethod
    def run(self, ctx: ExecutionContext) -> None:
        """Execute every unit in ``ctx.units``, routing outcomes back.

        Must return (never raise) on per-unit failures — those go
        through :meth:`ExecutionContext.fail_attempt` — and must honour
        :meth:`ExecutionContext.should_stop` between dispatches.
        """

    def close(self) -> None:
        """Release backend resources (idempotent; default no-op)."""

    def describe(self) -> dict:
        """A JSON-able summary for stats endpoints and checkpoints."""
        return {"backend": self.name}


@dataclass
class _Worker:
    """One live point-attempt process."""

    index: int
    attempt: int  # 1-based
    process: object
    conn: object
    started: float
    deadline: Optional[float]


@dataclass
class _Pending:
    """One queued point attempt (``ready_at`` implements backoff)."""

    index: int
    attempt: int  # 1-based
    ready_at: float = 0.0


class LocalBackend(ExecutionBackend):
    """Single-host execution: inline or supervised worker processes.

    This is the pre-protocol executor behavior, verbatim: ``jobs=1``
    with no timeout and no chaos hooks runs units inline (fast path);
    anything else fans units over supervised ``multiprocessing``
    children with per-attempt deadlines and crash isolation.
    """

    name = "local"

    def __init__(self, jobs: int = 1, isolate: Optional[bool] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: None = auto (isolate when jobs>1, a timeout is set, or a
        #: chaos hook is armed); True/False forces the mode.
        self.isolate = isolate

    def run(self, ctx: ExecutionContext) -> None:
        if self._should_isolate(ctx):
            self._run_isolated(ctx)
        else:
            self._run_inline(ctx)

    def _should_isolate(self, ctx: ExecutionContext) -> bool:
        if self.isolate is not None:
            return self.isolate
        return (self.jobs > 1 or ctx.policy.timeout is not None
                or _chaos_hooks_enabled())

    # -- inline path -------------------------------------------------------

    def _run_inline(self, ctx: ExecutionContext) -> None:
        """Run miss units in-process (no timeout enforcement possible).

        Each unit is one equivalence class: its first member simulates
        (through :meth:`~repro.core.suite.MicroBenchmarkSuite.\
simulate_point`, so test wrappers around the suite still intercept),
        the rest are replicated from that result. Per-point mode passes
        all-singleton units, making this byte-for-byte the legacy loop.
        """
        worker_id = f"inline:{os.getpid()}"
        for unit in ctx.units:
            if ctx.should_stop():
                return
            rep = unit[0]
            attempt = 0
            started = time.monotonic()
            while True:
                attempt += 1
                attempt_started = time.monotonic()
                try:
                    result = ctx.simulate(rep)
                except KeyboardInterrupt:
                    ctx.interrupt(signal.SIGINT)
                    return
                except Exception as exc:
                    attempt_wall = time.monotonic() - attempt_started
                    ctx.add_profile("simulate", attempt_wall)
                    delay = ctx.fail_attempt(
                        rep, attempt, f"{type(exc).__name__}: {exc}",
                        tb=traceback.format_exc(), worker=worker_id,
                        wall=attempt_wall,
                        total_wall=time.monotonic() - started)
                    if delay is None:
                        break
                    if delay > 0:
                        time.sleep(delay)
                else:
                    ctx.add_profile("simulate",
                                    time.monotonic() - attempt_started)
                    wall = time.monotonic() - started
                    ctx.complete(rep, result, attempt, wall)
                    break

    # -- isolated path -----------------------------------------------------

    def _run_isolated(self, ctx: ExecutionContext) -> None:
        """Run miss units in supervised worker processes.

        Each unit's representative is dispatched to a worker; when it
        reports back, the unit's remaining members are replicated in
        the parent (see :meth:`_collect`). A crashed/hung/failing
        representative fails its whole unit — every member is
        quarantined under its own key, so ``campaign resume`` re-runs
        exactly those points.
        """
        mp_ctx = multiprocessing.get_context()
        queue: List[_Pending] = [_Pending(unit[0], 1) for unit in ctx.units]
        live: Dict[int, _Worker] = {}
        try:
            while queue or live:
                if ctx.should_stop():
                    break
                now = time.monotonic()
                while len(live) < self.jobs and queue:
                    slot = next((p for p in queue if p.ready_at <= now),
                                None)
                    if slot is None:
                        break
                    queue.remove(slot)
                    live[slot.index] = self._spawn(
                        ctx, mp_ctx, slot.index, slot.attempt)
                if live:
                    self._wait_and_collect(ctx, queue, live)
                elif queue:
                    # Everyone is waiting out a backoff.
                    next_ready = min(p.ready_at for p in queue)
                    time.sleep(min(0.2, max(0.005,
                                            next_ready - time.monotonic())))
        finally:
            for worker in live.values():
                self._kill_worker(worker)

    def _spawn(self, ctx: ExecutionContext, mp_ctx,
               index: int, attempt: int) -> _Worker:
        payload = ctx.payload(index)
        parent_conn, child_conn = mp_ctx.Pipe(duplex=False)
        process = mp_ctx.Process(
            target=_child_main, args=(child_conn, payload, index, attempt - 1),
            daemon=True, name=f"repro-point-{index}",
        )
        process.start()
        child_conn.close()
        started = time.monotonic()
        deadline = (started + ctx.policy.timeout
                    if ctx.policy.timeout is not None else None)
        return _Worker(index=index, attempt=attempt, process=process,
                       conn=parent_conn, started=started, deadline=deadline)

    def _wait_and_collect(self, ctx: ExecutionContext,
                          queue: List[_Pending],
                          live: Dict[int, _Worker]) -> None:
        """One supervision step: wait for results, enforce deadlines."""
        now = time.monotonic()
        wait_timeout = 0.2
        deadlines = [w.deadline for w in live.values()
                     if w.deadline is not None]
        if deadlines:
            wait_timeout = min(wait_timeout, max(0.0, min(deadlines) - now))
        by_conn = {w.conn: w for w in live.values()}
        ready = mp_connection.wait(list(by_conn), timeout=wait_timeout)
        for conn in ready:
            worker = by_conn[conn]
            live.pop(worker.index, None)
            self._collect(ctx, worker, queue)
        now = time.monotonic()
        for worker in list(live.values()):
            if worker.deadline is not None and now >= worker.deadline:
                live.pop(worker.index, None)
                self._kill_worker(worker)
                ctx.trace("timeout", worker.index, attempt=worker.attempt,
                          timeout=ctx.policy.timeout)
                self._failure(
                    ctx, worker, queue,
                    f"point timed out after {ctx.policy.timeout:g} s "
                    f"(attempt {worker.attempt})", None, kind="timeout")

    def _collect(self, ctx: ExecutionContext, worker: _Worker,
                 queue: List[_Pending]) -> None:
        """Reap one finished (or dead) worker."""
        message = None
        try:
            if worker.conn.poll():
                message = worker.conn.recv()
        except (EOFError, OSError):
            message = None
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if message is None:
            code = worker.process.exitcode
            if code is not None and code < 0:
                try:
                    desc = f"killed by signal {signal.Signals(-code).name}"
                except ValueError:
                    desc = f"killed by signal {-code}"
            else:
                desc = f"exit code {code}"
            ctx.trace("crash", worker.index, attempt=worker.attempt,
                      exitcode=code)
            self._failure(ctx, worker, queue,
                          f"worker crashed ({desc}) before returning a "
                          f"result", None, kind="crash")
        elif message[0] == "ok":
            result = message[1]
            wall = time.monotonic() - worker.started
            ctx.add_profile("simulate", wall)
            ctx.complete(worker.index, result, worker.attempt, wall,
                         record=True)
        else:
            _tag, error, tb = message
            self._failure(ctx, worker, queue, error, tb)

    def _failure(self, ctx: ExecutionContext, worker: _Worker,
                 queue: List[_Pending], error: str, tb: Optional[str],
                 kind: str = "error") -> None:
        """Route one failed attempt: backoff-retry or quarantine."""
        pid = getattr(worker.process, "pid", None)
        delay = ctx.fail_attempt(
            worker.index, worker.attempt, error, tb=tb, kind=kind,
            worker=f"local:{pid}" if pid is not None else "local",
            wall=time.monotonic() - worker.started)
        if delay is not None:
            queue.append(_Pending(worker.index, worker.attempt + 1,
                                  time.monotonic() + delay))

    def _kill_worker(self, worker: _Worker) -> None:
        """Terminate (then kill) one worker; never raises."""
        try:
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn
                worker.process.kill()
                worker.process.join(timeout=2.0)
        except (OSError, ValueError):  # pragma: no cover
            pass
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass


def create_execution_backend(spec: Optional[str] = None, jobs: int = 1,
                             isolate: Optional[bool] = None,
                             **pool_options) -> ExecutionBackend:
    """Build a backend from a CLI-ish spec string.

    ``None``/``"local"`` → :class:`LocalBackend`; ``"pool"`` →
    :class:`~repro.campaign.pool.PoolBackend` (extra keyword options —
    ``workers``, ``bind``, ``lease``, ``drain_timeout`` — pass
    through). Unknown names raise ``ValueError``.
    """
    if spec is None or spec == "local":
        return LocalBackend(jobs=jobs, isolate=isolate)
    if spec == "pool":
        from repro.campaign.pool import PoolBackend

        if not pool_options.get("workers"):
            pool_options.setdefault("workers", jobs)
        return PoolBackend(**pool_options)
    raise ValueError(
        f"unknown execution backend {spec!r} (expected 'local' or 'pool')")
