"""Declarative benchmark campaigns over the persistent result store.

The paper's figures are parameterized sweeps — shuffle sizes ×
interconnects × (pair sizes | task counts | data types | runtimes),
several trials each. This package turns those sweeps into data:

* :mod:`repro.campaign.spec` — :class:`Campaign`, a frozen spec
  (axes, params, variants, trials, fault plan) loadable from TOML or
  JSON (``load_campaign`` / ``load_campaigns``), expandable to exact
  :class:`~repro.core.config.BenchmarkConfig` grid points.
* :mod:`repro.campaign.batch` — :func:`plan_batches` and
  :class:`BatchPlan`, the simulation-equivalence planner: cold points
  whose configs project to the same residue signature share one
  simulation, and the result is replicated onto the siblings
  byte-identically.
* :mod:`repro.campaign.executor` — :class:`CampaignExecutor` and
  :class:`RetryPolicy`, the hardened per-point engine: supervised
  worker processes, retries with exponential backoff, wall-clock
  timeouts, quarantine-instead-of-abort, graceful SIGINT/SIGTERM
  checkpointing (see ``docs/ROBUSTNESS.md``).
* :mod:`repro.campaign.runner` — :func:`run_campaign`: skip-on-hit
  execution through a :class:`~repro.store.ResultStore`, supervised
  parallelism for the misses, structured per-point progress, and
  campaign tagging so :mod:`repro.analysis.book` can rebuild every
  figure from store contents alone.
* :mod:`repro.campaign.backend` / :mod:`repro.campaign.pool` —
  :class:`ExecutionBackend`, the pluggable "where do cold units run"
  seam: :class:`LocalBackend` (the default in-process supervised
  path) and :class:`PoolBackend`, a socket coordinator for
  ``repro worker`` processes with heartbeat leases and dead-worker
  failover (see ``docs/DISTRIBUTED.md``).

The ``benchmarks/campaigns/*.json`` specs shipped with the repo are
the paper figures expressed this way; ``repro campaign run SPEC``
executes them from the command line.
"""

from repro.campaign.spec import (
    Campaign,
    CampaignPoint,
    load_campaign,
    load_campaigns,
)
from repro.campaign.batch import (
    BatchPlan,
    ResidueGroup,
    plan_batches,
    residue_signature,
)
from repro.campaign.backend import (
    ExecutionBackend,
    ExecutionBackendError,
    LocalBackend,
    create_execution_backend,
)
from repro.campaign.executor import (
    CampaignExecutor,
    ExecutionReport,
    PointOutcome,
    RetryPolicy,
)
from repro.campaign.pool import PoolBackend
from repro.campaign.runner import (
    CampaignPointResult,
    CampaignResult,
    PointProgress,
    run_campaign,
)

__all__ = [
    "BatchPlan",
    "Campaign",
    "CampaignExecutor",
    "CampaignPoint",
    "CampaignPointResult",
    "CampaignResult",
    "ExecutionBackend",
    "ExecutionBackendError",
    "ExecutionReport",
    "LocalBackend",
    "PointOutcome",
    "PointProgress",
    "PoolBackend",
    "ResidueGroup",
    "RetryPolicy",
    "create_execution_backend",
    "load_campaign",
    "load_campaigns",
    "plan_batches",
    "residue_signature",
    "run_campaign",
]
