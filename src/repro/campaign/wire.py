"""Length-prefixed message framing for the distributed worker pool.

The coordinator (:class:`~repro.campaign.pool.PoolBackend`) and its
``repro worker`` processes speak pickled Python tuples over TCP, each
frame prefixed with a 4-byte big-endian length. Everything is stdlib:
no external wire dependencies, and the payloads are exactly the
picklable point payloads the local ``multiprocessing`` path already
ships through its pipes.

Message vocabulary (first tuple element is the type tag):

* ``("hello", {"worker": id, "pid": pid})`` — worker → coordinator,
  once, immediately after connecting.
* ``("unit", token, index, dispatch0, heartbeat_secs, payload)`` —
  coordinator → worker: simulate one point-unit representative.
  ``token`` uniquely identifies the dispatch (stale results are
  dropped); ``dispatch0`` is the zero-based count of prior dispatches
  of this unit (retries *and* reassignments), fed to the chaos hooks.
* ``("heartbeat", token)`` — worker → coordinator, every
  ``heartbeat_secs`` while simulating; renews the unit's lease.
* ``("ok", token, result)`` / ``("error", token, message, traceback)``
  — worker → coordinator: the unit's outcome.
* ``("shutdown",)`` — coordinator → worker: drain and exit.

Trust model: the protocol uses :mod:`pickle`, so a worker endpoint
must only be exposed on trusted networks (localhost, an SSH tunnel, or
a private cluster fabric) — the same trust the paper's Hadoop clusters
place in their interconnect. ``docs/DISTRIBUTED.md`` spells this out.
"""

from __future__ import annotations

import pickle
import struct
from typing import Iterator, List

#: 4-byte big-endian frame length prefix.
HEADER = struct.Struct(">I")

#: Upper bound on one frame (corrupt/hostile length guard).
MAX_FRAME_BYTES = 256 * 1024 * 1024

MSG_HELLO = "hello"
MSG_UNIT = "unit"
MSG_HEARTBEAT = "heartbeat"
MSG_OK = "ok"
MSG_ERROR = "error"
MSG_SHUTDOWN = "shutdown"


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (EOF mid-protocol)."""


class FrameError(ValueError):
    """A frame violated the protocol (bad length, bad pickle)."""


def encode_message(message: object) -> bytes:
    """One message as a length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:  # pragma: no cover - absurd size
        raise FrameError(f"frame of {len(payload)} bytes exceeds "
                         f"{MAX_FRAME_BYTES}")
    return HEADER.pack(len(payload)) + payload


def send_message(sock, message: object) -> None:
    """Frame and send one message over a (blocking) socket."""
    sock.sendall(encode_message(message))


def _recv_exact(sock, count: int) -> bytes:
    """Read exactly ``count`` bytes; raise ConnectionClosed on EOF."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock) -> object:
    """Blocking-read one framed message (the worker's receive path)."""
    (length,) = HEADER.unpack(_recv_exact(sock, HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds "
                         f"{MAX_FRAME_BYTES}")
    try:
        return pickle.loads(_recv_exact(sock, length))
    except pickle.UnpicklingError as exc:  # pragma: no cover - corrupt peer
        raise FrameError(f"undecodable frame: {exc}") from exc


class FrameDecoder:
    """Incremental decoder for the coordinator's event-driven reads.

    The coordinator feeds whatever ``recv`` returned; :meth:`drain`
    yields every complete message and buffers the tail of a partial
    frame — so a slow or silent peer can never block the event loop
    mid-frame.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append raw bytes from the socket."""
        self._buffer.extend(data)

    def drain(self) -> Iterator[object]:
        """Yield every complete message currently buffered."""
        while True:
            if len(self._buffer) < HEADER.size:
                return
            (length,) = HEADER.unpack(bytes(self._buffer[:HEADER.size]))
            if length > MAX_FRAME_BYTES:
                raise FrameError(f"frame of {length} bytes exceeds "
                                 f"{MAX_FRAME_BYTES}")
            end = HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            try:
                yield pickle.loads(payload)
            except pickle.UnpicklingError as exc:  # pragma: no cover
                raise FrameError(f"undecodable frame: {exc}") from exc
