"""Hardened per-point campaign execution engine.

:func:`repro.campaign.runner.run_campaign` used to hand the whole grid
to ``suite._run_points`` — one crashed worker process aborted the
campaign and discarded every in-flight point. This module replaces
that all-or-nothing call with :class:`CampaignExecutor`, which runs
each point as an independently supervised unit of work:

* **Retries with exponential backoff** — a point that raises (or whose
  worker dies) is retried up to :attr:`RetryPolicy.retries` times,
  waiting ``backoff * backoff_factor**(attempt-1)`` seconds between
  attempts (capped at :attr:`RetryPolicy.max_backoff`); execution
  paths key the wait with the point's store key, decorrelating the
  jitter so N workers retrying one transient failure don't stampede
  in lockstep (deterministic per ``(key, attempt)``).
* **Per-point wall-clock timeouts** — with
  :attr:`RetryPolicy.timeout` set, a worker that exceeds it is
  terminated and the attempt counts as a failure (retryable).
* **Worker-crash isolation** — each point attempt runs in its own
  worker process; a SIGKILL'd/dying worker kills only its point, and
  the pool is replenished for the next attempt or point.
* **Quarantine instead of abort** — a point that exhausts its retries
  is recorded in the store's ``quarantine.json`` ledger (exception,
  traceback, attempts, and the full per-attempt history: failure
  kind, worker id, wall time) and the campaign *completes* with a
  ``failed`` count; ``repro campaign resume`` clears the ledger
  entries and re-runs exactly the missing points.
* **Graceful interruption** — SIGINT/SIGTERM stop launching new
  points, terminate in-flight workers (completed points are already
  durably in the store), write a campaign checkpoint, and return with
  ``interrupted=True``; the CLI maps that to exit code 130.
* **Observability** — retries, timeouts, crashes and quarantines emit
  :data:`~repro.sim.trace.CAT_HARNESS` markers (wall-clock times) on
  an optional :class:`~repro.sim.trace.Tracer`.

*Where* units execute is pluggable: the executor drives an
:class:`~repro.campaign.backend.ExecutionBackend` — by default the
:class:`~repro.campaign.backend.LocalBackend` (inline or supervised
``multiprocessing`` workers on this host, the historical behavior),
optionally the :class:`~repro.campaign.pool.PoolBackend` socket worker
pool for multi-process / multi-host fan-out with lease-based failover
(see ``docs/DISTRIBUTED.md``).

Determinism is untouched: every point is a seeded, self-contained
simulation, so a retried, resumed, reassigned or differently-scheduled
point is bit-identical to a clean single-process run (asserted by the
chaos tests against the 40-point golden suite).

Chaos hooks (tests / CI stress job only) live in
:mod:`repro.campaign.backend` — ``REPRO_CHAOS_CRASH``,
``REPRO_CHAOS_HANG``, ``REPRO_CHAOS_MUTE``, ``REPRO_CHAOS_ATTEMPTS``
are re-exported here for backwards compatibility. Setting a hook
forces isolated mode even at ``jobs=1``.
"""

from __future__ import annotations

import hashlib
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.backend import (  # noqa: F401  (re-exported surface)
    ENV_CHAOS_ATTEMPTS,
    ENV_CHAOS_CRASH,
    ENV_CHAOS_HANG,
    ENV_CHAOS_HANG_SECS,
    ENV_CHAOS_MUTE,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    ExecutionBackend,
    ExecutionContext,
    LocalBackend,
    _chaos_hook,
    _chaos_hooks_enabled,
    _child_main,
)
from repro.campaign.batch import plan_batches, replicate_result
from repro.core.config import BenchmarkConfig
from repro.core.matrix import precompute_matrices
from repro.core.suite import MicroBenchmarkSuite, ResultLike
from repro.sim.trace import CAT_HARNESS, Tracer


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor fights for each point."""

    #: Retries after the first attempt (total attempts = retries + 1).
    retries: int = 0
    #: Seconds before the first retry (0 disables backoff waits).
    backoff: float = 0.1
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff wait.
    max_backoff: float = 30.0
    #: Per-attempt wall-clock limit in seconds (None = unlimited).
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the policy as soon as it is built."""
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def delay(self, attempt: int, key: Optional[str] = None) -> float:
        """Backoff before the retry following failed attempt ``attempt``.

        Without a ``key`` this is the exact exponential progression
        (``backoff * backoff_factor**(attempt-1)``, capped). With a
        ``key`` — execution paths pass the point's store key — the
        wait is scaled by a deterministic per-``(key, attempt)`` factor
        in ``[0.5, 1.0)`` (decorrelated jitter): reproducible run to
        run, but N workers retrying the same transient failure no
        longer stampede in lockstep.
        """
        if self.backoff <= 0:
            return 0.0
        base = min(self.backoff * self.backoff_factor ** (attempt - 1),
                   self.max_backoff)
        if key is None:
            return base
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return base * (0.5 + 0.5 * unit)


@dataclass
class PointOutcome:
    """Everything the executor learned about one grid point."""

    index: int
    label: str
    key: str
    status: str = STATUS_SKIPPED
    attempts: int = 0
    result: Optional[ResultLike] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: Wall-clock seconds of the final attempt (0 for cached/skipped).
    wall_time: float = 0.0

    @property
    def succeeded(self) -> bool:
        """Whether the point produced a usable result."""
        return self.status in (STATUS_OK, STATUS_CACHED)


@dataclass
class ExecutionReport:
    """What one :meth:`CampaignExecutor.execute` pass did."""

    outcomes: List[PointOutcome]
    interrupted: bool = False
    #: The signal that interrupted the run, when any.
    stop_signal: Optional[int] = None
    #: Whether this pass ran the batch (equivalence-class) scheduler.
    batched: bool = False
    #: Simulations the batch plan intended to run (one per equivalence
    #: class of the cold points); equals the cold-point count when
    #: batching is off or nothing collapses.
    unique_simulations: int = 0
    #: Per-stage wall-clock seconds (store-lookup / shared-setup /
    #: simulate / record, plus whatever the caller seeds — the runner
    #: adds expand and tag time).
    profile: Dict[str, float] = field(default_factory=dict)
    #: Name of the execution backend the cold units ran on.
    backend: str = "local"

    def _count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def executed(self) -> int:
        """Points simulated in this run."""
        return self._count(STATUS_OK)

    @property
    def from_store(self) -> int:
        """Points served from the memo cache or disk store."""
        return self._count(STATUS_CACHED)

    @property
    def failed(self) -> int:
        """Points that exhausted their retries (quarantined)."""
        return self._count(STATUS_FAILED)

    @property
    def skipped(self) -> int:
        """Points never attempted (interrupt / fail-fast abort)."""
        return self._count(STATUS_SKIPPED)


class CampaignExecutor:
    """Supervised per-point execution over a suite's point hooks.

    The executor serves cached points through
    :meth:`~repro.core.suite.MicroBenchmarkSuite.lookup_point`, then
    drives the misses through an
    :class:`~repro.campaign.backend.ExecutionBackend` (by default the
    local inline/supervised-process backend), applying the
    :class:`RetryPolicy` uniformly on every substrate.
    """

    def __init__(
        self,
        suite: MicroBenchmarkSuite,
        policy: Optional[RetryPolicy] = None,
        jobs: int = 1,
        fail_fast: bool = False,
        isolate: Optional[bool] = None,
        batch: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        progress=None,
        campaign: str = "",
        handle_signals: bool = True,
        backend: Optional[ExecutionBackend] = None,
    ):
        """Bind the executor to a suite and its failure policy.

        ``handle_signals=False`` leaves the process's SIGINT/SIGTERM
        handlers alone — for embedding the executor inside a host that
        owns signal handling (the benchmark service's scheduler thread);
        the host interrupts a pass via :meth:`request_stop` instead.

        ``backend`` plugs in an execution substrate; None builds the
        default :class:`~repro.campaign.backend.LocalBackend` from
        ``jobs``/``isolate``. A caller-supplied backend is *borrowed*:
        the executor never closes it.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.suite = suite
        self.policy = policy if policy is not None else RetryPolicy()
        self.jobs = jobs
        self.fail_fast = fail_fast
        #: None = auto (isolate when jobs>1, a timeout is set, or a
        #: chaos hook is armed); True/False forces the mode. Only
        #: meaningful for the local backend.
        self.isolate = isolate
        #: None = auto (batch unless a chaos hook is armed or isolation
        #: is forced on); True/False forces the mode. ``False`` is the
        #: strict per-point loop — the oracle the batch path is
        #: benchmarked and parity-tested against.
        self.batch = batch
        self.tracer = tracer
        #: Called with each finished :class:`PointOutcome`
        #: (completion order).
        self.progress = progress
        self.campaign = campaign
        self.handle_signals = handle_signals
        self.backend = (backend if backend is not None
                        else LocalBackend(jobs=jobs, isolate=isolate))
        #: Stage seconds merged into the profile before execution (the
        #: runner seeds campaign-expansion time here).
        self.profile_base: Dict[str, float] = {}
        #: Optional ``(campaign_name, metas)`` with one tag-meta dict
        #: per config (set by the runner). When present, replicated
        #: sibling records are written with their campaign tag already
        #: in place, so the runner's post-hoc tag pass reads — but
        #: never rewrites — them (the bytes match put-then-tag
        #: exactly).
        self.tag_plan: Optional[Tuple[str, Sequence[Optional[dict]]]] = None
        #: Per-stage wall-clock seconds of the last ``execute`` pass.
        self.profile: Dict[str, float] = {}
        self._unit_of: Dict[int, Tuple[int, ...]] = {}
        self._stop_signal: Optional[int] = None
        self._stop_requested = False
        self._abort = False

    # -- public surface ----------------------------------------------------

    def request_stop(self, signum: int = signal.SIGINT) -> None:
        """Interrupt execution as a signal would (thread-safe, sticky).

        The embedding host's replacement for sending a signal: the
        current :meth:`execute` pass stops launching new units and
        returns ``interrupted=True``, and every later pass returns
        interrupted immediately (completed points are already durable).
        """
        self._stop_requested = True
        self._stop_signal = signum

    def execute(self, configs: Sequence[BenchmarkConfig],
                labels: Optional[Sequence[str]] = None) -> ExecutionReport:
        """Run every point; never raises for per-point failures."""
        labels = (list(labels) if labels is not None
                  else [f"point{i}" for i in range(len(configs))])
        keys = [self.suite.store_key(config) for config in configs]
        outcomes = [
            PointOutcome(index=i, label=labels[i], key=keys[i])
            for i in range(len(configs))
        ]
        self._stop_signal = (signal.SIGINT if self._stop_requested
                             else None)
        self._abort = False
        self._unit_of = {}
        profile = {"store-lookup": 0.0, "shared-setup": 0.0,
                   "simulate": 0.0, "record": 0.0}
        for stage, seconds in self.profile_base.items():
            profile[stage] = profile.get(stage, 0.0) + seconds
        self.profile = profile
        batched = self._should_batch()
        unique = 0
        old_handlers = self._install_signal_handlers()
        try:
            pending: List[int] = []
            stage_started = time.monotonic()
            if batched:
                for i, found in enumerate(self.suite.lookup_points(configs)):
                    if found is not None:
                        self._finish(outcomes[i], STATUS_CACHED, result=found)
                    else:
                        pending.append(i)
            else:
                for i, config in enumerate(configs):
                    if self._stop_signal is not None:
                        break
                    found = self.suite.lookup_point(config)
                    if found is not None:
                        self._finish(outcomes[i], STATUS_CACHED, result=found)
                    else:
                        pending.append(i)
            profile["store-lookup"] += time.monotonic() - stage_started
            if pending and not self._stop_signal:
                if batched:
                    stage_started = time.monotonic()
                    plan = plan_batches(self.suite, configs, pending)
                    units: List[Tuple[int, ...]] = [
                        group.members for group in plan.groups
                    ]
                    precompute_matrices(
                        configs[unit[0]] for unit in units)
                    profile["shared-setup"] += (time.monotonic()
                                                - stage_started)
                    unique = plan.unique
                    self._trace("batch-plan", self.campaign or "campaign",
                                points=plan.points, unique=plan.unique,
                                collapsed=plan.collapsed)
                else:
                    units = [(i,) for i in pending]
                    unique = len(units)
                self._unit_of = {unit[0]: unit for unit in units}
                self.backend.run(
                    ExecutionContext(self, configs, outcomes, units))
        finally:
            self._restore_signal_handlers(old_handlers)
        report = ExecutionReport(
            outcomes=outcomes,
            interrupted=self._stop_signal is not None,
            stop_signal=self._stop_signal,
            batched=batched,
            unique_simulations=unique,
            profile=dict(profile),
            backend=self.backend.name,
        )
        self._write_checkpoint(report)
        return report

    # -- signals -----------------------------------------------------------

    def _install_signal_handlers(self) -> Dict[int, object]:
        handlers: Dict[int, object] = {}
        if not self.handle_signals:
            return handlers
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                handlers[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):
                # Not the main thread (or unsupported signal): graceful
                # interruption degrades to the default behavior.
                pass
        return handlers

    def _restore_signal_handlers(self, handlers: Dict[int, object]) -> None:
        for signum, handler in handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _on_signal(self, signum, frame) -> None:
        self._stop_signal = signum

    # -- mode selection ----------------------------------------------------

    def _should_batch(self) -> bool:
        """Whether to run the equivalence-class batch scheduler.

        Auto mode keeps the strict per-point loop under chaos hooks and
        forced isolation (the robustness tests' ground truth); the
        explicit flag wins either way, so batch+chaos composition is
        testable.
        """
        if self.batch is not None:
            return self.batch
        return not _chaos_hooks_enabled() and self.isolate is not True

    # -- bookkeeping -------------------------------------------------------

    def _replicate(self, configs, outcomes, unit: Tuple[int, ...],
                   result, attempts: int, wall: float) -> None:
        """Serve a unit's siblings from its representative's result.

        Each sibling gets the representative's payload under its own
        config (byte-identical to simulating it directly — see
        :mod:`repro.campaign.batch`), recorded through one batched
        store write, and finishes ``STATUS_OK`` like any other
        simulated point.
        """
        clones = [(i, replicate_result(result, configs[i]))
                  for i in unit[1:]]
        if self.tag_plan is not None:
            name, metas = self.tag_plan
            self.suite.record_points(
                [(configs[i], clone, {name: metas[i]})
                 for i, clone in clones])
        else:
            self.suite.record_points(
                [(configs[i], clone) for i, clone in clones])
        for i, clone in clones:
            self._finish(outcomes[i], STATUS_OK, result=clone,
                         attempts=attempts, wall=wall)

    def _finish(self, outcome: PointOutcome, status: str,
                result: Optional[ResultLike] = None, attempts: int = 0,
                error: Optional[str] = None, tb: Optional[str] = None,
                wall: float = 0.0,
                history: Optional[List[dict]] = None) -> None:
        """Seal one outcome, quarantine failures, emit progress."""
        outcome.status = status
        outcome.result = result
        outcome.attempts = attempts
        outcome.error = error
        outcome.traceback = tb
        outcome.wall_time = wall
        if status == STATUS_FAILED:
            self._trace("quarantine", outcome.label, point=outcome.index,
                        attempts=attempts, error=error)
            if self.suite.store is not None:
                self.suite.store.quarantine_add(outcome.key, {
                    "campaign": self.campaign,
                    "label": outcome.label,
                    "error": error,
                    "traceback": tb,
                    "attempts": attempts,
                    "history": list(history) if history else [],
                    "quarantined_at": time.time(),
                })
            if self.fail_fast:
                self._abort = True
        if self.progress is not None:
            self.progress(outcome)

    def _write_checkpoint(self, report: ExecutionReport) -> None:
        """Publish the campaign's progress snapshot to the store."""
        store = self.suite.store
        if store is None or not self.campaign:
            return
        store.write_checkpoint(self.campaign, {
            "campaign": self.campaign,
            "total": len(report.outcomes),
            "interrupted": report.interrupted,
            "completed": [o.key for o in report.outcomes if o.succeeded],
            "failed": [o.key for o in report.outcomes
                       if o.status == STATUS_FAILED],
            "skipped": [o.key for o in report.outcomes
                        if o.status == STATUS_SKIPPED],
            "batched": report.batched,
            "unique_simulations": report.unique_simulations,
            "backend": report.backend,
            "profile": report.profile,
            "written_at": time.time(),
        })

    def _trace(self, name: str, lane: str, **args) -> None:
        """Emit one CAT_HARNESS marker (wall-clock, zero duration)."""
        if self.tracer is None:
            return
        now = time.time()
        self.tracer.complete(name, CAT_HARNESS, "harness", lane,
                             now, now, **args)
