"""Hardened per-point campaign execution engine.

:func:`repro.campaign.runner.run_campaign` used to hand the whole grid
to ``suite._run_points`` — one crashed worker process aborted the
campaign and discarded every in-flight point. This module replaces
that all-or-nothing call with :class:`CampaignExecutor`, which runs
each point as an independently supervised unit of work:

* **Retries with exponential backoff** — a point that raises (or whose
  worker dies) is retried up to :attr:`RetryPolicy.retries` times,
  waiting ``backoff * backoff_factor**(attempt-1)`` seconds between
  attempts (capped at :attr:`RetryPolicy.max_backoff`).
* **Per-point wall-clock timeouts** — with
  :attr:`RetryPolicy.timeout` set, a worker that exceeds it is
  terminated and the attempt counts as a failure (retryable).
* **Worker-crash isolation** — each point attempt runs in its own
  worker process; a SIGKILL'd/dying worker kills only its point, and
  the pool is replenished for the next attempt or point.
* **Quarantine instead of abort** — a point that exhausts its retries
  is recorded in the store's ``quarantine.json`` ledger (exception,
  traceback, attempts) and the campaign *completes* with a ``failed``
  count; ``repro campaign resume`` clears the ledger entries and
  re-runs exactly the missing points.
* **Graceful interruption** — SIGINT/SIGTERM stop launching new
  points, terminate in-flight workers (completed points are already
  durably in the store), write a campaign checkpoint, and return with
  ``interrupted=True``; the CLI maps that to exit code 130.
* **Observability** — retries, timeouts, crashes and quarantines emit
  :data:`~repro.sim.trace.CAT_HARNESS` markers (wall-clock times) on
  an optional :class:`~repro.sim.trace.Tracer`.

Determinism is untouched: every point is a seeded, self-contained
simulation, so a retried, resumed, or differently-scheduled point is
bit-identical to a clean single-process run (asserted by the chaos
tests against the 40-point golden suite).

Chaos hooks (tests / CI stress job only)
----------------------------------------
Worker children honour three environment variables, *only* in
isolated-execution mode, so the failure paths are exercisable without
patching production code: ``REPRO_CHAOS_CRASH=<point-index>`` makes
the worker SIGKILL itself, ``REPRO_CHAOS_HANG=<point-index>`` makes it
sleep ``$REPRO_CHAOS_HANG_SECS`` (default 3600), and
``REPRO_CHAOS_ATTEMPTS=<n>`` limits the sabotage to the first *n*
attempts of that point (default 1, so a retry succeeds). Setting
either hook forces isolated mode even at ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.batch import plan_batches, replicate_result
from repro.core.config import BenchmarkConfig
from repro.core.matrix import precompute_matrices
from repro.core.suite import MicroBenchmarkSuite, ResultLike, _run_point
from repro.sim.trace import CAT_HARNESS, Tracer

#: Chaos hooks (see module docstring). Test/CI surface, env-gated.
ENV_CHAOS_CRASH = "REPRO_CHAOS_CRASH"
ENV_CHAOS_HANG = "REPRO_CHAOS_HANG"
ENV_CHAOS_HANG_SECS = "REPRO_CHAOS_HANG_SECS"
ENV_CHAOS_ATTEMPTS = "REPRO_CHAOS_ATTEMPTS"

#: Point outcome statuses.
STATUS_OK = "ok"            #: simulated this run
STATUS_CACHED = "cached"    #: served from memo cache / disk store
STATUS_FAILED = "failed"    #: exhausted retries; quarantined
STATUS_SKIPPED = "skipped"  #: never ran (interrupt or fail-fast abort)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor fights for each point."""

    #: Retries after the first attempt (total attempts = retries + 1).
    retries: int = 0
    #: Seconds before the first retry (0 disables backoff waits).
    backoff: float = 0.1
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff wait.
    max_backoff: float = 30.0
    #: Per-attempt wall-clock limit in seconds (None = unlimited).
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the policy as soon as it is built."""
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def delay(self, attempt: int) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        if self.backoff <= 0:
            return 0.0
        return min(self.backoff * self.backoff_factor ** (attempt - 1),
                   self.max_backoff)


@dataclass
class PointOutcome:
    """Everything the executor learned about one grid point."""

    index: int
    label: str
    key: str
    status: str = STATUS_SKIPPED
    attempts: int = 0
    result: Optional[ResultLike] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: Wall-clock seconds of the final attempt (0 for cached/skipped).
    wall_time: float = 0.0

    @property
    def succeeded(self) -> bool:
        """Whether the point produced a usable result."""
        return self.status in (STATUS_OK, STATUS_CACHED)


@dataclass
class ExecutionReport:
    """What one :meth:`CampaignExecutor.execute` pass did."""

    outcomes: List[PointOutcome]
    interrupted: bool = False
    #: The signal that interrupted the run, when any.
    stop_signal: Optional[int] = None
    #: Whether this pass ran the batch (equivalence-class) scheduler.
    batched: bool = False
    #: Simulations the batch plan intended to run (one per equivalence
    #: class of the cold points); equals the cold-point count when
    #: batching is off or nothing collapses.
    unique_simulations: int = 0
    #: Per-stage wall-clock seconds (store-lookup / shared-setup /
    #: simulate / record, plus whatever the caller seeds — the runner
    #: adds expand and tag time).
    profile: Dict[str, float] = field(default_factory=dict)

    def _count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def executed(self) -> int:
        """Points simulated in this run."""
        return self._count(STATUS_OK)

    @property
    def from_store(self) -> int:
        """Points served from the memo cache or disk store."""
        return self._count(STATUS_CACHED)

    @property
    def failed(self) -> int:
        """Points that exhausted their retries (quarantined)."""
        return self._count(STATUS_FAILED)

    @property
    def skipped(self) -> int:
        """Points never attempted (interrupt / fail-fast abort)."""
        return self._count(STATUS_SKIPPED)


@dataclass
class _Worker:
    """One live point-attempt process."""

    index: int
    attempt: int  # 1-based
    process: object
    conn: object
    started: float
    deadline: Optional[float]


@dataclass
class _Pending:
    """One queued point attempt (``ready_at`` implements backoff)."""

    index: int
    attempt: int  # 1-based
    ready_at: float = 0.0


def _chaos_hooks_enabled() -> bool:
    """Whether any env-gated chaos hook is armed (forces isolation)."""
    return bool(os.environ.get(ENV_CHAOS_CRASH)
                or os.environ.get(ENV_CHAOS_HANG))


def _chaos_hook(index: int, attempt0: int) -> None:
    """Sabotage this worker if the chaos env vars target it.

    ``attempt0`` is zero-based; by default only the first attempt of
    the targeted point misbehaves, so retries demonstrably recover.
    """
    try:
        misbehaving_attempts = int(os.environ.get(ENV_CHAOS_ATTEMPTS, "1"))
    except ValueError:
        misbehaving_attempts = 1
    if attempt0 >= misbehaving_attempts:
        return
    if os.environ.get(ENV_CHAOS_CRASH) == str(index):
        os.kill(os.getpid(), signal.SIGKILL)
    if os.environ.get(ENV_CHAOS_HANG) == str(index):
        time.sleep(float(os.environ.get(ENV_CHAOS_HANG_SECS, "3600")))


def _child_main(conn, payload: tuple, index: int, attempt0: int) -> None:
    """Worker-process entry: simulate one point, ship the result back.

    The parent owns shutdown: SIGINT is ignored (the parent decides
    what dies) and SIGTERM is restored to its default action so
    ``terminate()`` always works even though the parent's graceful
    handler was inherited across ``fork``.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        _chaos_hook(index, attempt0)
        result = _run_point(payload)
    except BaseException as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - parent gone
            pass
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    except (OSError, ValueError):  # pragma: no cover - parent gone
        pass
    finally:
        conn.close()


class CampaignExecutor:
    """Supervised per-point execution over a suite's point hooks.

    The executor serves cached points through
    :meth:`~repro.core.suite.MicroBenchmarkSuite.lookup_point`, then
    drives the misses either inline (fast path: ``jobs=1``, no
    timeout, no chaos hooks) or through supervised worker processes,
    applying the :class:`RetryPolicy` uniformly in both modes.
    """

    def __init__(
        self,
        suite: MicroBenchmarkSuite,
        policy: Optional[RetryPolicy] = None,
        jobs: int = 1,
        fail_fast: bool = False,
        isolate: Optional[bool] = None,
        batch: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        progress=None,
        campaign: str = "",
        handle_signals: bool = True,
    ):
        """Bind the executor to a suite and its failure policy.

        ``handle_signals=False`` leaves the process's SIGINT/SIGTERM
        handlers alone — for embedding the executor inside a host that
        owns signal handling (the benchmark service's scheduler thread);
        the host interrupts a pass via :meth:`request_stop` instead.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.suite = suite
        self.policy = policy if policy is not None else RetryPolicy()
        self.jobs = jobs
        self.fail_fast = fail_fast
        #: None = auto (isolate when jobs>1, a timeout is set, or a
        #: chaos hook is armed); True/False forces the mode.
        self.isolate = isolate
        #: None = auto (batch unless a chaos hook is armed or isolation
        #: is forced on); True/False forces the mode. ``False`` is the
        #: strict per-point loop — the oracle the batch path is
        #: benchmarked and parity-tested against.
        self.batch = batch
        self.tracer = tracer
        #: Called with each finished :class:`PointOutcome`
        #: (completion order).
        self.progress = progress
        self.campaign = campaign
        self.handle_signals = handle_signals
        #: Stage seconds merged into the profile before execution (the
        #: runner seeds campaign-expansion time here).
        self.profile_base: Dict[str, float] = {}
        #: Optional ``(campaign_name, metas)`` with one tag-meta dict
        #: per config (set by the runner). When present, replicated
        #: sibling records are written with their campaign tag already
        #: in place, so the runner's post-hoc tag pass reads — but
        #: never rewrites — them (the bytes match put-then-tag
        #: exactly).
        self.tag_plan: Optional[Tuple[str, Sequence[Optional[dict]]]] = None
        #: Per-stage wall-clock seconds of the last ``execute`` pass.
        self.profile: Dict[str, float] = {}
        self._unit_of: Dict[int, Tuple[int, ...]] = {}
        self._stop_signal: Optional[int] = None
        self._stop_requested = False
        self._abort = False

    # -- public surface ----------------------------------------------------

    def request_stop(self, signum: int = signal.SIGINT) -> None:
        """Interrupt execution as a signal would (thread-safe, sticky).

        The embedding host's replacement for sending a signal: the
        current :meth:`execute` pass stops launching new units and
        returns ``interrupted=True``, and every later pass returns
        interrupted immediately (completed points are already durable).
        """
        self._stop_requested = True
        self._stop_signal = signum

    def execute(self, configs: Sequence[BenchmarkConfig],
                labels: Optional[Sequence[str]] = None) -> ExecutionReport:
        """Run every point; never raises for per-point failures."""
        labels = (list(labels) if labels is not None
                  else [f"point{i}" for i in range(len(configs))])
        keys = [self.suite.store_key(config) for config in configs]
        outcomes = [
            PointOutcome(index=i, label=labels[i], key=keys[i])
            for i in range(len(configs))
        ]
        self._stop_signal = (signal.SIGINT if self._stop_requested
                             else None)
        self._abort = False
        self._unit_of = {}
        profile = {"store-lookup": 0.0, "shared-setup": 0.0,
                   "simulate": 0.0, "record": 0.0}
        for stage, seconds in self.profile_base.items():
            profile[stage] = profile.get(stage, 0.0) + seconds
        self.profile = profile
        batched = self._should_batch()
        unique = 0
        old_handlers = self._install_signal_handlers()
        try:
            pending: List[int] = []
            stage_started = time.monotonic()
            if batched:
                for i, found in enumerate(self.suite.lookup_points(configs)):
                    if found is not None:
                        self._finish(outcomes[i], STATUS_CACHED, result=found)
                    else:
                        pending.append(i)
            else:
                for i, config in enumerate(configs):
                    if self._stop_signal is not None:
                        break
                    found = self.suite.lookup_point(config)
                    if found is not None:
                        self._finish(outcomes[i], STATUS_CACHED, result=found)
                    else:
                        pending.append(i)
            profile["store-lookup"] += time.monotonic() - stage_started
            if pending and not self._stop_signal:
                if batched:
                    stage_started = time.monotonic()
                    plan = plan_batches(self.suite, configs, pending)
                    units: List[Tuple[int, ...]] = [
                        group.members for group in plan.groups
                    ]
                    precompute_matrices(
                        configs[unit[0]] for unit in units)
                    profile["shared-setup"] += (time.monotonic()
                                                - stage_started)
                    unique = plan.unique
                    self._trace("batch-plan", self.campaign or "campaign",
                                points=plan.points, unique=plan.unique,
                                collapsed=plan.collapsed)
                else:
                    units = [(i,) for i in pending]
                    unique = len(units)
                if self._should_isolate():
                    self._run_isolated(configs, outcomes, units)
                else:
                    self._run_inline(configs, outcomes, units)
        finally:
            self._restore_signal_handlers(old_handlers)
        report = ExecutionReport(
            outcomes=outcomes,
            interrupted=self._stop_signal is not None,
            stop_signal=self._stop_signal,
            batched=batched,
            unique_simulations=unique,
            profile=dict(profile),
        )
        self._write_checkpoint(report)
        return report

    # -- signals -----------------------------------------------------------

    def _install_signal_handlers(self) -> Dict[int, object]:
        handlers: Dict[int, object] = {}
        if not self.handle_signals:
            return handlers
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                handlers[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):
                # Not the main thread (or unsupported signal): graceful
                # interruption degrades to the default behavior.
                pass
        return handlers

    def _restore_signal_handlers(self, handlers: Dict[int, object]) -> None:
        for signum, handler in handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _on_signal(self, signum, frame) -> None:
        self._stop_signal = signum

    # -- mode selection ----------------------------------------------------

    def _should_isolate(self) -> bool:
        if self.isolate is not None:
            return self.isolate
        return (self.jobs > 1 or self.policy.timeout is not None
                or _chaos_hooks_enabled())

    def _should_batch(self) -> bool:
        """Whether to run the equivalence-class batch scheduler.

        Auto mode keeps the strict per-point loop under chaos hooks and
        forced isolation (the robustness tests' ground truth); the
        explicit flag wins either way, so batch+chaos composition is
        testable.
        """
        if self.batch is not None:
            return self.batch
        return not _chaos_hooks_enabled() and self.isolate is not True

    # -- inline path -------------------------------------------------------

    def _run_inline(self, configs, outcomes,
                    units: List[Tuple[int, ...]]) -> None:
        """Run miss units in-process (no timeout enforcement possible).

        Each unit is one equivalence class: its first member simulates
        (through :meth:`~repro.core.suite.MicroBenchmarkSuite.\
simulate_point`, so test wrappers around the suite still intercept),
        the rest are replicated from that result. Per-point mode passes
        all-singleton units, making this byte-for-byte the legacy loop.
        """
        profile = self.profile
        for unit in units:
            if self._stop_signal is not None or self._abort:
                return
            rep = unit[0]
            attempt = 0
            started = time.monotonic()
            while True:
                attempt += 1
                attempt_started = time.monotonic()
                try:
                    result = self.suite.simulate_point(configs[rep])
                except KeyboardInterrupt:
                    self._stop_signal = signal.SIGINT
                    return
                except Exception as exc:
                    profile["simulate"] += (time.monotonic()
                                            - attempt_started)
                    error = f"{type(exc).__name__}: {exc}"
                    if (attempt <= self.policy.retries
                            and self._stop_signal is None):
                        self._retry_wait(outcomes[rep], attempt, error)
                        continue
                    tb = traceback.format_exc()
                    wall = time.monotonic() - started
                    for i in unit:
                        self._finish(outcomes[i], STATUS_FAILED,
                                     attempts=attempt, error=error,
                                     tb=tb, wall=wall)
                    break
                else:
                    profile["simulate"] += (time.monotonic()
                                            - attempt_started)
                    wall = time.monotonic() - started
                    self._finish(outcomes[rep], STATUS_OK, result=result,
                                 attempts=attempt, wall=wall)
                    if len(unit) > 1:
                        stage_started = time.monotonic()
                        self._replicate(configs, outcomes, unit, result,
                                        attempt, wall)
                        profile["record"] += (time.monotonic()
                                              - stage_started)
                    break

    def _retry_wait(self, outcome: PointOutcome, attempt: int,
                    error: str) -> None:
        """Emit the retry marker and sleep the backoff (inline mode)."""
        delay = self.policy.delay(attempt)
        self._trace("retry", outcome.label, point=outcome.index,
                    attempt=attempt, error=error, delay=delay)
        if delay > 0:
            time.sleep(delay)

    # -- isolated path -----------------------------------------------------

    def _run_isolated(self, configs, outcomes,
                      units: List[Tuple[int, ...]]) -> None:
        """Run miss units in supervised worker processes.

        Each unit's representative is dispatched to a worker; when it
        reports back, the unit's remaining members are replicated in
        the parent (see :meth:`_collect`). A crashed/hung/failing
        representative fails its whole unit — every member is
        quarantined under its own key, so ``campaign resume`` re-runs
        exactly those points.
        """
        ctx = multiprocessing.get_context()
        self._unit_of = {unit[0]: unit for unit in units}
        queue: List[_Pending] = [_Pending(unit[0], 1) for unit in units]
        live: Dict[int, _Worker] = {}
        try:
            while queue or live:
                if self._stop_signal is not None or self._abort:
                    break
                now = time.monotonic()
                while len(live) < self.jobs and queue:
                    slot = next((p for p in queue if p.ready_at <= now),
                                None)
                    if slot is None:
                        break
                    queue.remove(slot)
                    live[slot.index] = self._spawn(
                        ctx, configs[slot.index], slot.index, slot.attempt)
                if live:
                    self._wait_and_collect(configs, outcomes, queue, live)
                elif queue:
                    # Everyone is waiting out a backoff.
                    next_ready = min(p.ready_at for p in queue)
                    time.sleep(min(0.2, max(0.005,
                                            next_ready - time.monotonic())))
        finally:
            for worker in live.values():
                self._kill_worker(worker)

    def _spawn(self, ctx, config, index: int, attempt: int) -> _Worker:
        payload = self.suite.point_payload(config)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main, args=(child_conn, payload, index, attempt - 1),
            daemon=True, name=f"repro-point-{index}",
        )
        process.start()
        child_conn.close()
        started = time.monotonic()
        deadline = (started + self.policy.timeout
                    if self.policy.timeout is not None else None)
        return _Worker(index=index, attempt=attempt, process=process,
                       conn=parent_conn, started=started, deadline=deadline)

    def _wait_and_collect(self, configs, outcomes,
                          queue: List[_Pending],
                          live: Dict[int, _Worker]) -> None:
        """One supervision step: wait for results, enforce deadlines."""
        now = time.monotonic()
        wait_timeout = 0.2
        deadlines = [w.deadline for w in live.values()
                     if w.deadline is not None]
        if deadlines:
            wait_timeout = min(wait_timeout, max(0.0, min(deadlines) - now))
        by_conn = {w.conn: w for w in live.values()}
        ready = mp_connection.wait(list(by_conn), timeout=wait_timeout)
        for conn in ready:
            worker = by_conn[conn]
            live.pop(worker.index, None)
            self._collect(worker, configs, outcomes, queue)
        now = time.monotonic()
        for worker in list(live.values()):
            if worker.deadline is not None and now >= worker.deadline:
                live.pop(worker.index, None)
                self._kill_worker(worker)
                self._trace("timeout", outcomes[worker.index].label,
                            point=worker.index, attempt=worker.attempt,
                            timeout=self.policy.timeout)
                self._failure(
                    worker, outcomes, queue,
                    f"point timed out after {self.policy.timeout:g} s "
                    f"(attempt {worker.attempt})", None)

    def _collect(self, worker: _Worker, configs, outcomes,
                 queue: List[_Pending]) -> None:
        """Reap one finished (or dead) worker."""
        message = None
        try:
            if worker.conn.poll():
                message = worker.conn.recv()
        except (EOFError, OSError):
            message = None
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if message is None:
            code = worker.process.exitcode
            if code is not None and code < 0:
                try:
                    desc = f"killed by signal {signal.Signals(-code).name}"
                except ValueError:
                    desc = f"killed by signal {-code}"
            else:
                desc = f"exit code {code}"
            self._trace("crash", outcomes[worker.index].label,
                        point=worker.index, attempt=worker.attempt,
                        exitcode=code)
            self._failure(worker, outcomes, queue,
                          f"worker crashed ({desc}) before returning a "
                          f"result", None)
        elif message[0] == "ok":
            result = message[1]
            wall = time.monotonic() - worker.started
            self.profile["simulate"] += wall
            self.suite.record_point(configs[worker.index], result)
            self._finish(outcomes[worker.index], STATUS_OK, result=result,
                         attempts=worker.attempt, wall=wall)
            unit = self._unit_of.get(worker.index, (worker.index,))
            if len(unit) > 1:
                stage_started = time.monotonic()
                self._replicate(configs, outcomes, unit, result,
                                worker.attempt, wall)
                self.profile["record"] += time.monotonic() - stage_started
        else:
            _tag, error, tb = message
            self._failure(worker, outcomes, queue, error, tb)

    def _failure(self, worker: _Worker, outcomes, queue: List[_Pending],
                 error: str, tb: Optional[str]) -> None:
        """Route one failed attempt: backoff-retry or quarantine."""
        outcome = outcomes[worker.index]
        if (worker.attempt <= self.policy.retries
                and self._stop_signal is None and not self._abort):
            delay = self.policy.delay(worker.attempt)
            self._trace("retry", outcome.label, point=worker.index,
                        attempt=worker.attempt, error=error, delay=delay)
            queue.append(_Pending(worker.index, worker.attempt + 1,
                                  time.monotonic() + delay))
            return
        wall = time.monotonic() - worker.started
        for i in self._unit_of.get(worker.index, (worker.index,)):
            self._finish(outcomes[i], STATUS_FAILED, attempts=worker.attempt,
                         error=error, tb=tb, wall=wall)

    def _kill_worker(self, worker: _Worker) -> None:
        """Terminate (then kill) one worker; never raises."""
        try:
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn
                worker.process.kill()
                worker.process.join(timeout=2.0)
        except (OSError, ValueError):  # pragma: no cover
            pass
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- bookkeeping -------------------------------------------------------

    def _replicate(self, configs, outcomes, unit: Tuple[int, ...],
                   result, attempts: int, wall: float) -> None:
        """Serve a unit's siblings from its representative's result.

        Each sibling gets the representative's payload under its own
        config (byte-identical to simulating it directly — see
        :mod:`repro.campaign.batch`), recorded through one batched
        store write, and finishes ``STATUS_OK`` like any other
        simulated point.
        """
        clones = [(i, replicate_result(result, configs[i]))
                  for i in unit[1:]]
        if self.tag_plan is not None:
            name, metas = self.tag_plan
            self.suite.record_points(
                [(configs[i], clone, {name: metas[i]})
                 for i, clone in clones])
        else:
            self.suite.record_points(
                [(configs[i], clone) for i, clone in clones])
        for i, clone in clones:
            self._finish(outcomes[i], STATUS_OK, result=clone,
                         attempts=attempts, wall=wall)

    def _finish(self, outcome: PointOutcome, status: str,
                result: Optional[ResultLike] = None, attempts: int = 0,
                error: Optional[str] = None, tb: Optional[str] = None,
                wall: float = 0.0) -> None:
        """Seal one outcome, quarantine failures, emit progress."""
        outcome.status = status
        outcome.result = result
        outcome.attempts = attempts
        outcome.error = error
        outcome.traceback = tb
        outcome.wall_time = wall
        if status == STATUS_FAILED:
            self._trace("quarantine", outcome.label, point=outcome.index,
                        attempts=attempts, error=error)
            if self.suite.store is not None:
                self.suite.store.quarantine_add(outcome.key, {
                    "campaign": self.campaign,
                    "label": outcome.label,
                    "error": error,
                    "traceback": tb,
                    "attempts": attempts,
                    "quarantined_at": time.time(),
                })
            if self.fail_fast:
                self._abort = True
        if self.progress is not None:
            self.progress(outcome)

    def _write_checkpoint(self, report: ExecutionReport) -> None:
        """Publish the campaign's progress snapshot to the store."""
        store = self.suite.store
        if store is None or not self.campaign:
            return
        store.write_checkpoint(self.campaign, {
            "campaign": self.campaign,
            "total": len(report.outcomes),
            "interrupted": report.interrupted,
            "completed": [o.key for o in report.outcomes if o.succeeded],
            "failed": [o.key for o in report.outcomes
                       if o.status == STATUS_FAILED],
            "skipped": [o.key for o in report.outcomes
                        if o.status == STATUS_SKIPPED],
            "batched": report.batched,
            "unique_simulations": report.unique_simulations,
            "profile": report.profile,
            "written_at": time.time(),
        })

    def _trace(self, name: str, lane: str, **args) -> None:
        """Emit one CAT_HARNESS marker (wall-clock, zero duration)."""
        if self.tracer is None:
            return
        now = time.time()
        self.tracer.complete(name, CAT_HARNESS, "harness", lane,
                             now, now, **args)
