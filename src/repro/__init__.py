"""A micro-benchmark suite for evaluating Hadoop MapReduce on
high-performance networks — full-system Python reproduction.

Reproduces Shankar, Lu, Wasi-ur-Rahman, Islam, Panda, *"A
Micro-benchmark Suite for Evaluating Hadoop MapReduce on
High-Performance Networks"* (BPOE 2014): the stand-alone MapReduce
micro-benchmarks (MR-AVG / MR-RAND / MR-SKEW) plus every substrate they
run on, simulated — a discrete-event Hadoop MRv1/YARN framework, flow-
level network models for 1 GigE / 10 GigE / IPoIB QDR / IPoIB FDR /
RDMA, the Writable type system, and a functional local MapReduce engine
for semantic validation.

Quickstart::

    from repro import MicroBenchmarkSuite, cluster_a

    suite = MicroBenchmarkSuite(cluster=cluster_a(4))
    result = suite.run("MR-AVG", shuffle_gb=16, network="ipoib-qdr",
                       num_maps=16, num_reduces=8)
    print(f"job executed in {result.execution_time:.1f} simulated seconds")

Subpackages
-----------
:mod:`repro.core`
    The paper's contribution: benchmarks, partitioners, null formats,
    configuration, suite runner, reports, CLI.
:mod:`repro.hadoop`
    Simulated Hadoop MapReduce framework (MRv1 + YARN + MRoIB/RDMA).
:mod:`repro.net`
    Interconnect models and the max-min fair network fabric.
:mod:`repro.faults`
    Declarative, seeded fault injection and resilience reporting.
:mod:`repro.datatypes`
    Hadoop Writable types and IFile serialization.
:mod:`repro.engine`
    Functional (really-executing) local MapReduce engine.
:mod:`repro.sim`
    Discrete-event simulation kernel.
:mod:`repro.analysis`
    Statistics, table rendering, and the Experiment Book generator.
:mod:`repro.store`
    Persistent, content-addressed result store (warm-start caching).
:mod:`repro.campaign`
    Declarative benchmark campaigns over the store.
"""

from repro.core.benchmarks import (
    ALL_BENCHMARKS,
    MR_AVG,
    MR_RAND,
    MR_SKEW,
    MicroBenchmark,
    get_benchmark,
)
from repro.core.config import BenchmarkConfig
from repro.core.report import render_report
from repro.core.suite import (MicroBenchmarkSuite, SweepResult, SweepRow,
                              clear_result_cache, result_cache_stats)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    NodeCrash,
    ResilienceReport,
    SlowNode,
)
from repro.campaign import Campaign, load_campaign, load_campaigns, run_campaign
from repro.hadoop.cluster import ClusterSpec, cluster_a, cluster_b
from repro.hadoop.job import JobConf
from repro.hadoop.result import SimJobResult
from repro.hadoop.simulation import run_simulated_job
from repro.net.interconnect import INTERCONNECTS, get_interconnect
from repro.store import ResultStore, StoredResult, point_key

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkConfig",
    "ClusterSpec",
    "FaultInjector",
    "FaultPlan",
    "INTERCONNECTS",
    "JobConf",
    "LinkFault",
    "Campaign",
    "MR_AVG",
    "MR_RAND",
    "MR_SKEW",
    "MicroBenchmark",
    "MicroBenchmarkSuite",
    "NodeCrash",
    "ResilienceReport",
    "ResultStore",
    "SimJobResult",
    "SlowNode",
    "StoredResult",
    "SweepResult",
    "SweepRow",
    "clear_result_cache",
    "cluster_a",
    "cluster_b",
    "get_benchmark",
    "get_interconnect",
    "load_campaign",
    "load_campaigns",
    "point_key",
    "render_report",
    "result_cache_stats",
    "run_campaign",
    "run_simulated_job",
    "__version__",
]
