"""Programmatic shape validation against the paper's headline claims.

The benchmark harness (``benchmarks/``) regenerates every figure and
asserts its shape; this module packages the *headline* checks — the
§7 summary numbers — as a callable API, so CI (or a user who just
recalibrated the cost model) can verify in one call that the
reproduction still reproduces.

Each check compares a measured quantity against the paper's band and
reports pass/fail with the numbers; :func:`validate_headline_shapes`
bundles them into a :class:`ValidationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analysis.stats import improvement_pct
from repro.core.suite import MicroBenchmarkSuite
from repro.hadoop.cluster import cluster_a, cluster_b

#: Default workload for the Cluster A checks (the Fig. 2 setup).
_CLUSTER_A = dict(num_maps=16, num_reduces=8, key_size=512, value_size=512)


@dataclass
class ShapeCheck:
    """One claim: a measured value expected inside [low, high]."""

    name: str
    paper_claim: str
    low: float
    high: float
    measured: Optional[float] = None

    @property
    def passed(self) -> bool:
        if self.measured is None:
            return False
        return self.low <= self.measured <= self.high

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        measured = "n/a" if self.measured is None else f"{self.measured:.1f}"
        return (
            f"[{status}] {self.name}: measured {measured} "
            f"(band {self.low:g}..{self.high:g}; paper {self.paper_claim})"
        )


@dataclass
class ValidationReport:
    """The outcome of a validation run."""

    checks: List[ShapeCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[ShapeCheck]:
        return [c for c in self.checks if not c.passed]

    def __str__(self) -> str:
        lines = [str(c) for c in self.checks]
        verdict = "ALL SHAPES HOLD" if self.passed else (
            f"{len(self.failures)} SHAPE(S) BROKEN"
        )
        lines.append(verdict)
        return "\n".join(lines)


def validate_headline_shapes(shuffle_gb: float = 16.0) -> ValidationReport:
    """Run the §7 headline checks on the standard setups.

    Takes a few seconds of wall clock (five simulated jobs on Cluster A
    plus two on Cluster B).
    """
    report = ValidationReport()
    suite = MicroBenchmarkSuite(cluster=cluster_a(4))

    times = {
        net: suite.run("MR-AVG", shuffle_gb=shuffle_gb, network=net,
                       **_CLUSTER_A).execution_time
        for net in ("1GigE", "10GigE", "ipoib-qdr")
    }
    d10 = improvement_pct(times["1GigE"], times["10GigE"])
    dib = improvement_pct(times["1GigE"], times["ipoib-qdr"])
    dib10 = improvement_pct(times["10GigE"], times["ipoib-qdr"])
    report.checks.append(ShapeCheck(
        "MR-AVG 1GigE->10GigE improvement %", "~17%", 10.0, 25.0, d10))
    report.checks.append(ShapeCheck(
        "MR-AVG 1GigE->IPoIB QDR improvement %", "up to ~24%", 17.0, 32.0,
        dib))
    report.checks.append(ShapeCheck(
        "MR-AVG 10GigE->IPoIB QDR improvement %", "~8-12%", 3.0, 15.0,
        dib10))

    skew = suite.run("MR-SKEW", shuffle_gb=shuffle_gb, network="1GigE",
                     **_CLUSTER_A).execution_time
    report.checks.append(ShapeCheck(
        "MR-SKEW/MR-AVG job time ratio", "~2x", 1.6, 2.8,
        skew / times["1GigE"]))

    bsuite = MicroBenchmarkSuite(cluster=cluster_b(8))
    t_ib = bsuite.run("MR-AVG", shuffle_gb=32, network="ipoib-fdr",
                      num_maps=32, num_reduces=16).execution_time
    t_rd = bsuite.run("MR-AVG", shuffle_gb=32, network="rdma",
                      num_maps=32, num_reduces=16).execution_time
    report.checks.append(ShapeCheck(
        "MRoIB gain over IPoIB FDR (8 slaves) %", "~28-30%", 18.0, 38.0,
        improvement_pct(t_ib, t_rd)))
    return report
