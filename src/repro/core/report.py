"""Paper-style benchmark reports.

The suite "display[s] the configuration parameters and resource
utilization statistics for each test, along with the final job
execution time, as the micro-benchmark output" (Sect. 1).
:func:`render_report` reproduces that output format from a
:class:`~repro.hadoop.result.SimJobResult`.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import format_table
from repro.hadoop.counters import format_counters, job_counters
from repro.hadoop.result import PHASES, SimJobResult


def _config_section(result: SimJobResult) -> str:
    desc = result.config.describe()
    rows = [
        ("Benchmark", f"MR-{desc['pattern'].upper()}"),
        ("Framework", result.jobconf.version),
        ("Cluster", f"{result.cluster.name} ({result.cluster.num_slaves} slaves)"),
        ("Network", result.interconnect_name),
        ("Transport", result.transport_name),
        ("Data type", desc["data_type"]),
        ("Key size (B)", desc["key_size"]),
        ("Value size (B)", desc["value_size"]),
        ("Key/value pairs", f"{desc['num_pairs']:,}"),
        ("Record size (B)", desc["record_size"]),
        ("Shuffle data", f"{desc['shuffle_bytes'] / 1e9:.2f} GB"),
        ("Map tasks", desc["num_maps"]),
        ("Reduce tasks", desc["num_reduces"]),
        ("Seed", desc["seed"]),
    ]
    width = max(len(str(k)) for k, _v in rows)
    return "\n".join(f"  {str(k).ljust(width)} : {v}" for k, v in rows)


def _phase_section(result: SimJobResult) -> str:
    b = result.breakdown()
    rows = [
        ("Map phase end", f"{b['map_phase']:.2f} s"),
        ("Slowest shuffle+merge", f"{b['slowest_shuffle']:.2f} s"),
        ("Slowest reduce fn", f"{b['slowest_reduce_fn']:.2f} s"),
        ("Reduce phase", f"{result.reduce_phase_time:.2f} s"),
    ]
    width = max(len(k) for k, _v in rows)
    return "\n".join(f"  {k.ljust(width)} : {v}" for k, v in rows)


def _task_table(result: SimJobResult) -> str:
    headers = ["reduce", "node", "shuffle (s)", "reduce (s)",
               "fetched (MB)", "spilled (MB)"]
    rows: List[List[object]] = []
    for s in result.reduce_stats:
        rows.append([
            s.reduce_id, s.node, round(s.shuffle_duration, 2),
            round(s.reduce_duration, 2),
            round(s.bytes_fetched / 1e6, 1),
            round(s.bytes_spilled / 1e6, 1),
        ])
    return format_table(headers, rows)


def _utilization_section(result: SimJobResult) -> str:
    monitor = result.monitor
    if monitor is None:
        return "  (run with monitor_interval to collect CPU/network traces)"
    lines = []
    for metric, unit in (("cpu_pct", "%"), ("net_rx_mb_s", "MB/s"),
                         ("net_tx_mb_s", "MB/s"), ("disk_mb_s", "MB/s")):
        if metric in monitor.samples:
            lines.append(
                f"  {metric:<12} peak {monitor.peak(metric):8.1f} {unit:<4} "
                f"mean {monitor.mean(metric):8.1f} {unit}"
            )
    return "\n".join(lines)


def _resilience_section(result: SimJobResult) -> str:
    report = result.resilience
    s = report.summary()
    rows = [
        ("Task failures", f"{s['task_failures']} "
                          f"({s['injected_task_failures']} injected)"),
        ("Fetch retries", f"{s['fetch_retries']} "
                          f"({s['refetched_mb']} MB refetched)"),
        ("Node crashes", s["node_crashes"]),
        ("Attempts killed", s["attempts_killed"]),
        ("Wasted task time", f"{s['wasted_task_seconds']} s"),
        ("Re-executed data", f"{s['reexecuted_mb']} MB"),
    ]
    for crash in report.crashes:
        recovered = ("not recovered" if crash.recovery_time is None
                     else f"recovered in {crash.recovery_time:.2f} s")
        rows.append((
            f"Crash of {crash.node}",
            f"t={crash.time:.2f} s, {crash.attempts_killed} attempts "
            f"killed, {recovered}",
        ))
    if report.speculative_launched:
        effectiveness = report.speculation_effectiveness
        rows.append((
            "Speculation",
            f"{report.speculative_won}/{report.speculative_launched} "
            f"backups won ({effectiveness:.0%})",
        ))
    width = max(len(str(k)) for k, _v in rows)
    return "\n".join(f"  {str(k).ljust(width)} : {v}" for k, v in rows)


def render_phase_table(result: SimJobResult, per_task: bool = False) -> str:
    """Paper-style per-phase table from the structured breakdown.

    One row per node (or per task with ``per_task=True``), one column
    per phase (map, spill-merge, shuffle, merge, reduce), in
    task-seconds, plus a totals row. Phase seconds per task sum to that
    task's wall duration; the job's wall-clock windows are appended
    under the table.
    """
    breakdown = result.phase_breakdown()
    headers = (["task", "node"] if per_task else ["node"])
    headers += [phase.replace("_", "-") for phase in PHASES] + ["total"]
    rows: List[List[object]] = []
    if per_task:
        for row in breakdown.rows:
            rows.append([row.task, row.node]
                        + [round(row.phases[p], 2) for p in PHASES]
                        + [round(row.total, 2)])
    else:
        for node, phases in breakdown.by_node().items():
            rows.append([node] + [round(phases[p], 2) for p in PHASES]
                        + [round(sum(phases.values()), 2)])
    totals = breakdown.totals()
    rows.append((["TOTAL", ""] if per_task else ["TOTAL"])
                + [round(totals[p], 2) for p in PHASES]
                + [round(sum(totals.values()), 2)])
    table = format_table(headers, rows,
                         title="Phase breakdown (task-seconds)")
    footer = (
        f"  map phase end      : {breakdown.map_phase_end:.2f} s\n"
        f"  first reduce start : {breakdown.first_reduce_start:.2f} s\n"
        f"  job execution time : {breakdown.execution_time:.2f} s"
    )
    return f"{table}\n{footer}"


def render_stored_report(result) -> str:
    """The per-test report for a warm :class:`~repro.store.StoredResult`.

    Disk-store hits carry the durable subset of a run (configuration,
    phase rows, resilience summary) but not live task stats, counters
    or utilization traces, so the report is the compact form: the
    configuration echo, the phase table and the job execution time.
    Pass ``--no-store`` (or ``store=None``) to force a live run when
    the full report is needed.
    """
    desc = result.config.describe()
    rows = [
        ("Benchmark", f"MR-{desc['pattern'].upper()}"),
        ("Framework", result.runtime),
        ("Cluster", f"{result.cluster_name} ({result.num_slaves} slaves)"),
        ("Network", result.interconnect_name),
        ("Transport", result.transport_name),
        ("Data type", desc["data_type"]),
        ("Key size (B)", desc["key_size"]),
        ("Value size (B)", desc["value_size"]),
        ("Key/value pairs", f"{desc['num_pairs']:,}"),
        ("Shuffle data", f"{desc['shuffle_bytes'] / 1e9:.2f} GB"),
        ("Map tasks", desc["num_maps"]),
        ("Reduce tasks", desc["num_reduces"]),
        ("Seed", desc["seed"]),
    ]
    width = max(len(str(k)) for k, _v in rows)
    config = "\n".join(f"  {str(k).ljust(width)} : {v}" for k, v in rows)
    sections = [
        "=" * 64,
        "Stand-alone Hadoop MapReduce Micro-benchmark",
        "(served from the result store; use --no-store for a live run)",
        "=" * 64,
        "Configuration:",
        config,
        "",
        render_phase_table(result),
        "",
    ]
    if result.resilience:
        width = max(len(k) for k in result.resilience)
        sections += [
            "Fault injection / resilience (stored summary):",
            "\n".join(f"  {k.ljust(width)} : {v}"
                      for k, v in result.resilience.items()),
            "",
        ]
    sections += [
        f"JOB EXECUTION TIME: {result.execution_time:.2f} seconds",
        "=" * 64,
    ]
    return "\n".join(sections)


def render_report(result: SimJobResult) -> str:
    """The suite's per-test output: parameters, utilization, job time."""
    sections = [
        "=" * 64,
        "Stand-alone Hadoop MapReduce Micro-benchmark",
        "=" * 64,
        "Configuration:",
        _config_section(result),
        "",
        "Phase breakdown:",
        _phase_section(result),
        "",
        "Reduce tasks:",
        _task_table(result),
        "",
        "Resource utilization (slave0):",
        _utilization_section(result),
        "",
        format_counters(job_counters(result)),
        "",
    ]
    if result.resilience is not None:
        sections += [
            "Fault injection / resilience:",
            _resilience_section(result),
            "",
        ]
    sections += [
        f"JOB EXECUTION TIME: {result.execution_time:.2f} seconds",
        "=" * 64,
    ]
    return "\n".join(sections)
