"""The paper's contribution: the stand-alone MapReduce micro-benchmark suite.

Modules:

* :mod:`repro.core.config` — :class:`BenchmarkConfig`, all user knobs.
* :mod:`repro.core.formats` — NullInputFormat / NullOutputFormat.
* :mod:`repro.core.datagen` — deterministic in-memory pair generation.
* :mod:`repro.core.partitioners` — MR-AVG / MR-RAND / MR-SKEW patterns.
* :mod:`repro.core.matrix` — shuffle matrices (who sends what to whom).
* :mod:`repro.core.benchmarks` — the named micro-benchmarks.
* :mod:`repro.core.suite` — run benchmarks on a simulated cluster.
* :mod:`repro.core.report` — paper-style result reports.
* :mod:`repro.core.cli` — ``mr-microbench`` command-line driver.
"""

from repro.core.benchmarks import (
    ALL_BENCHMARKS,
    MR_AVG,
    MR_RAND,
    MR_SKEW,
    MicroBenchmark,
    get_benchmark,
)
from repro.core.config import (
    BenchmarkConfig,
    PATTERN_AVG,
    PATTERN_RAND,
    PATTERN_SKEW,
    PATTERN_SKEW_SPLIT,
    PATTERN_ZIPF,
    PATTERNS,
    SUPPORTED_DATA_TYPES,
)
from repro.core.datagen import KeyValueGenerator
from repro.core.formats import (
    DummyRecordReader,
    DummySplit,
    NullInputFormat,
    NullOutputFormat,
    NullRecordWriter,
)
from repro.core.matrix import (
    ShuffleMatrix,
    clear_matrix_cache,
    compute_shuffle_matrix,
)
from repro.core.partitioners import (
    AveragePartitioner,
    HashPartitioner,
    Partitioner,
    RandomPartitioner,
    SkewedPartitioner,
    distribution_stats,
    make_partitioner,
)
from repro.core.report import render_phase_table, render_report
from repro.core.suite import (MicroBenchmarkSuite, SweepResult, SweepRow,
                              clear_result_cache, result_cache_stats)
from repro.core.validate import (
    ShapeCheck,
    ValidationReport,
    validate_headline_shapes,
)
from repro.core.workloads import WORKLOADS, WorkloadProfile, get_workload

__all__ = [
    "ALL_BENCHMARKS",
    "AveragePartitioner",
    "BenchmarkConfig",
    "DummyRecordReader",
    "DummySplit",
    "HashPartitioner",
    "KeyValueGenerator",
    "MR_AVG",
    "MR_RAND",
    "MR_SKEW",
    "MicroBenchmark",
    "MicroBenchmarkSuite",
    "NullInputFormat",
    "NullOutputFormat",
    "NullRecordWriter",
    "PATTERNS",
    "PATTERN_AVG",
    "PATTERN_RAND",
    "PATTERN_SKEW",
    "PATTERN_SKEW_SPLIT",
    "PATTERN_ZIPF",
    "Partitioner",
    "RandomPartitioner",
    "ShapeCheck",
    "ShuffleMatrix",
    "SkewedPartitioner",
    "SweepResult",
    "SweepRow",
    "ValidationReport",
    "WORKLOADS",
    "WorkloadProfile",
    "clear_matrix_cache",
    "clear_result_cache",
    "compute_shuffle_matrix",
    "distribution_stats",
    "get_benchmark",
    "get_workload",
    "SUPPORTED_DATA_TYPES",
    "make_partitioner",
    "render_phase_table",
    "render_report",
    "result_cache_stats",
    "validate_headline_shapes",
]
