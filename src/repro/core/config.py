"""Benchmark configuration — the paper's user-specified parameters.

Section 3 lists the dimensions the suite exposes: intermediate data
distribution, size and number of key/value pairs, number of map and
reduce tasks, data type, and network configuration.
:class:`BenchmarkConfig` is the single object carrying all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Type

from repro.datatypes import BytesWritable, Text
from repro.datatypes.serialization import record_wire_size
from repro.datatypes.writable import Writable, writable_class

#: Distribution pattern identifiers (Sect. 4.2) plus the "zipf"
#: real-world-skew extension this reproduction adds.
PATTERN_AVG = "avg"
PATTERN_RAND = "rand"
PATTERN_SKEW = "skew"
PATTERN_ZIPF = "zipf"
PATTERN_SKEW_SPLIT = "skew-split"
PATTERNS = (PATTERN_AVG, PATTERN_RAND, PATTERN_SKEW, PATTERN_ZIPF,
            PATTERN_SKEW_SPLIT)

#: Data types the paper evaluates (Sect. 5.2); the suite supports any
#: registered Writable with payload semantics.
SUPPORTED_DATA_TYPES = ("BytesWritable", "Text")


@dataclass(frozen=True)
class BenchmarkConfig:
    """Complete parameterization of one micro-benchmark run.

    Attributes mirror the CLI options of the paper's suite:

    ``pattern``
        Intermediate data distribution, one of :data:`PATTERNS`:
        ``avg`` (MR-AVG), ``rand`` (MR-RAND), ``skew`` (MR-SKEW), plus
        the ``zipf`` and ``skew-split`` extensions.
    ``key_size`` / ``value_size``
        Payload bytes per key and per value. The paper's "key/value
        pair size of 1 KB" splits evenly: 512 B keys + 512 B values.
    ``num_pairs``
        Total intermediate key/value pairs generated across all maps.
    ``num_maps`` / ``num_reduces``
        Task counts (the paper's most basic tunables).
    ``data_type``
        Writable class name for both key and value.
    ``network``
        Interconnect name/alias resolved by
        :func:`repro.net.get_interconnect`.
    ``seed``
        Seed for the generator and the random/skew partitioners; fixed
        by default so every run sees the same mapping, as the paper
        requires for fair cross-network comparison.
    """

    pattern: str = PATTERN_AVG
    key_size: int = 512
    value_size: int = 512
    num_pairs: int = 1_000_000
    num_maps: int = 16
    num_reduces: int = 8
    data_type: str = "BytesWritable"
    network: str = "1GigE"
    seed: int = 20140901
    #: Mixed-type extension: override the key or value Writable class
    #: independently (``None`` falls back to ``data_type``). The paper
    #: lists "investigate other data types" as future work.
    key_type: Optional[str] = None
    value_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )
        if self.key_size < 1 or self.value_size < 0:
            raise ValueError("key_size must be >= 1 and value_size >= 0")
        if self.num_pairs < 1:
            raise ValueError(f"num_pairs must be >= 1, got {self.num_pairs}")
        if self.num_maps < 1 or self.num_reduces < 1:
            raise ValueError("num_maps and num_reduces must be >= 1")
        for attr in ("data_type", "key_type", "value_type"):
            name = getattr(self, attr)
            if name is None:
                continue
            try:
                writable_class(name)
            except KeyError:
                raise ValueError(
                    f"{attr} must name a registered Writable type, "
                    f"got {name!r}"
                ) from None
            if name not in SUPPORTED_DATA_TYPES:
                raise ValueError(
                    f"{attr} must be one of {SUPPORTED_DATA_TYPES}, "
                    f"got {name!r}"
                )

    # -- derived quantities ----------------------------------------------

    @property
    def writable(self) -> Type[Writable]:
        """The default key/value Writable class (``data_type``)."""
        return writable_class(self.data_type)

    @property
    def key_writable(self) -> Type[Writable]:
        """The key's Writable class (``key_type`` or ``data_type``)."""
        return writable_class(self.key_type or self.data_type)

    @property
    def value_writable(self) -> Type[Writable]:
        """The value's Writable class (``value_type`` or ``data_type``)."""
        return writable_class(self.value_type or self.data_type)

    @property
    def pair_size(self) -> int:
        """User-visible payload bytes per pair (key + value)."""
        return self.key_size + self.value_size

    @property
    def record_size(self) -> int:
        """Exact on-wire bytes per intermediate record (IFile framing)."""
        return record_wire_size(
            self.key_writable, self.key_size, self.value_size,
            value_datatype=self.value_writable,
        )

    @property
    def shuffle_bytes(self) -> int:
        """Total intermediate (shuffle) bytes for the whole job."""
        return self.num_pairs * self.record_size

    def pairs_for_map(self, map_id: int) -> int:
        """Pairs generated by one map; remainders go to the first maps."""
        if not 0 <= map_id < self.num_maps:
            raise IndexError(f"map_id {map_id} out of range")
        base, extra = divmod(self.num_pairs, self.num_maps)
        return base + (1 if map_id < extra else 0)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_shuffle_size(
        cls, shuffle_bytes: float, **kwargs: object
    ) -> "BenchmarkConfig":
        """Build a config whose total shuffle volume is ~``shuffle_bytes``.

        This is how the paper's sweeps are expressed ("we vary the
        number of intermediate key/value pairs generated" for a target
        shuffle data size). The pair count is rounded to keep per-map
        counts integral.
        """
        probe = cls(num_pairs=1, **kwargs)  # type: ignore[arg-type]
        pairs = max(1, round(shuffle_bytes / probe.record_size))
        return replace(probe, num_pairs=pairs)

    def canonical_dict(self) -> Dict[str, object]:
        """Canonical (JSON-ready) form for stable, cross-process hashing.

        Unlike :meth:`describe` this is a *key*, not a report: fields
        appear verbatim except ``network``, which is resolved to the
        interconnect's canonical name so every alias of the same fabric
        hashes identically. Used by :mod:`repro.store` to address
        on-disk results.
        """
        from repro.store.keys import config_components

        return config_components(self)

    def stable_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_dict`.

        Stable across processes, platforms and ``PYTHONHASHSEED``
        values (unlike ``hash(config)``). This digest covers only the
        benchmark config; the full store key also mixes in cluster,
        jobconf, cost model, fault plan and the store schema version —
        see :func:`repro.store.keys.point_key`.
        """
        from repro.store.keys import stable_digest

        return stable_digest(self.canonical_dict())

    def describe(self) -> Dict[str, object]:
        """Flat dict of all parameters plus derived sizes (for reports)."""
        return {
            "pattern": self.pattern,
            "key_size": self.key_size,
            "value_size": self.value_size,
            "num_pairs": self.num_pairs,
            "num_maps": self.num_maps,
            "num_reduces": self.num_reduces,
            "data_type": self.data_type,
            "key_type": self.key_type or self.data_type,
            "value_type": self.value_type or self.data_type,
            "network": self.network,
            "seed": self.seed,
            "record_size": self.record_size,
            "shuffle_bytes": self.shuffle_bytes,
        }


# Re-export the concrete types for convenience in configs/tests.
__all__ = [
    "BenchmarkConfig",
    "BytesWritable",
    "PATTERNS",
    "PATTERN_AVG",
    "PATTERN_RAND",
    "PATTERN_SKEW",
    "PATTERN_SKEW_SPLIT",
    "PATTERN_ZIPF",
    "SUPPORTED_DATA_TYPES",
    "Text",
]
