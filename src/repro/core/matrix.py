"""Shuffle matrices: who sends how much to whom.

The simulator needs, for every (map task, reduce task) pair, the number
of intermediate records — and therefore bytes — the reducer fetches
from that map's host. This module produces that matrix by *running the
configured partitioner*:

* exactly, record by record, when the per-map pair count is small
  enough (tests, functional engine cross-validation); or
* via a seeded multinomial draw from the partitioner's
  ``expected_distribution()`` when a map generates millions of pairs
  (a 64 GB / 1 KB sweep point has 6.4e7 records; looping in Python
  would dominate the harness). The two paths agree in distribution;
  the test suite checks the exact path against the sampled one.

MR-AVG bypasses sampling entirely — round-robin is deterministic and
the exact counts have a closed form.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.config import BenchmarkConfig, PATTERN_AVG
from repro.core.datagen import KeyValueGenerator
from repro.core.partitioners import make_partitioner

#: Per-map record count above which the sampled path is used.
EXACT_LIMIT = 250_000


class ShuffleMatrix:
    """Record and byte counts per (map, reduce) cell."""

    def __init__(self, config: BenchmarkConfig, records: np.ndarray):
        if records.shape != (config.num_maps, config.num_reduces):
            raise ValueError(
                f"matrix shape {records.shape} does not match "
                f"{config.num_maps} maps x {config.num_reduces} reduces"
            )
        self.config = config
        self.records = records.astype(np.int64)

    @property
    def bytes(self) -> np.ndarray:
        """On-wire bytes per cell (records x exact record size)."""
        return self.records * self.config.record_size

    def records_for_reducer(self, reduce_id: int) -> int:
        return int(self.records[:, reduce_id].sum())

    def bytes_for_reducer(self, reduce_id: int) -> int:
        return self.records_for_reducer(reduce_id) * self.config.record_size

    def records_for_map(self, map_id: int) -> int:
        return int(self.records[map_id, :].sum())

    def bytes_for_map(self, map_id: int) -> int:
        return self.records_for_map(map_id) * self.config.record_size

    @property
    def total_records(self) -> int:
        return int(self.records.sum())

    @property
    def total_bytes(self) -> int:
        return self.total_records * self.config.record_size

    def reducer_loads(self) -> List[int]:
        """Per-reducer record totals (the skew signature)."""
        return [self.records_for_reducer(r) for r in range(self.config.num_reduces)]


def _exact_counts(config: BenchmarkConfig, map_id: int) -> np.ndarray:
    """Run the real partitioner over the map's record stream."""
    partitioner = make_partitioner(
        config.pattern, config.num_reduces, seed=config.seed + map_id
    )
    if not partitioner.uses_keys:
        # The pattern partitioners are index/PRNG driven, so the counts
        # come from exact_counts' bit-identical replay of the draw
        # sequence — no key/value objects are materialized.
        return partitioner.exact_counts(config.pairs_for_map(map_id))
    gen = KeyValueGenerator(config, map_id)
    counts = np.zeros(config.num_reduces, dtype=np.int64)
    value = None
    for key, value in gen:
        counts[partitioner.get_partition(key, value)] += 1
    return counts


def _sampled_counts(config: BenchmarkConfig, map_id: int) -> np.ndarray:
    """Multinomial draw matching the partitioner's limit distribution."""
    partitioner = make_partitioner(
        config.pattern, config.num_reduces, seed=config.seed + map_id
    )
    probs = np.asarray(partitioner.expected_distribution())
    rng = np.random.default_rng(config.seed * 1_000_003 + map_id)
    return rng.multinomial(config.pairs_for_map(map_id), probs).astype(np.int64)


def _avg_counts(config: BenchmarkConfig, map_id: int) -> np.ndarray:
    """Closed form for round-robin: even split with the first
    ``n_pairs % num_reduces`` reducers getting one extra."""
    pairs = config.pairs_for_map(map_id)
    base, extra = divmod(pairs, config.num_reduces)
    counts = np.full(config.num_reduces, base, dtype=np.int64)
    counts[:extra] += 1
    return counts


def _avg_matrix(config: BenchmarkConfig) -> np.ndarray:
    """Vectorized round-robin matrix: one row per distinct map size.

    ``pairs_for_map`` takes at most two values across the map axis
    (``base`` and ``base + 1``), so the full matrix has at most two
    distinct rows. Build each once and stack views — bit-identical to
    stacking :func:`_avg_counts` per map, without the per-map loop.
    """
    row_of: dict = {}
    rows = []
    for map_id in range(config.num_maps):
        pairs = config.pairs_for_map(map_id)
        row = row_of.get(pairs)
        if row is None:
            base, extra = divmod(pairs, config.num_reduces)
            row = np.full(config.num_reduces, base, dtype=np.int64)
            row[:extra] += 1
            row_of[pairs] = row
        rows.append(row)
    return np.vstack(rows)


#: Record matrices keyed by the fields that determine them. The matrix
#: is independent of the network/cluster, so sweep points that differ
#: only in interconnect share one computation. Matrices are tiny
#: (maps x reduces int64), so the cache is unbounded.
_MATRIX_CACHE: dict = {}


def clear_matrix_cache() -> None:
    """Drop all cached shuffle matrices (mainly for tests)."""
    _MATRIX_CACHE.clear()


def matrix_cache_key(
    config: BenchmarkConfig, exact_limit: int = EXACT_LIMIT
) -> tuple:
    """The fields of ``config`` that determine its shuffle matrix.

    Two configs with equal keys share one (bit-identical) matrix. The
    matrix is network/cluster independent, and for MR-AVG it is also
    seed independent (round-robin has a closed form that never touches
    a PRNG), so the AVG key normalizes the seed away — trials of an
    MR-AVG sweep all share a single matrix.
    """
    seed = None if config.pattern == PATTERN_AVG else config.seed
    return (config.pattern, config.num_maps, config.num_reduces,
            config.num_pairs, seed, exact_limit)


def compute_shuffle_matrix(
    config: BenchmarkConfig, exact_limit: int = EXACT_LIMIT
) -> ShuffleMatrix:
    """Build the (maps x reduces) record-count matrix for a config."""
    key = matrix_cache_key(config, exact_limit)
    records = _MATRIX_CACHE.get(key)
    if records is None:
        if config.pattern == PATTERN_AVG:
            records = _avg_matrix(config)
        else:
            rows = []
            for map_id in range(config.num_maps):
                if config.pairs_for_map(map_id) <= exact_limit:
                    rows.append(_exact_counts(config, map_id))
                else:
                    rows.append(_sampled_counts(config, map_id))
            records = np.vstack(rows)
        _MATRIX_CACHE[key] = records
    return ShuffleMatrix(config, records)


def precompute_matrices(
    configs, exact_limit: int = EXACT_LIMIT
) -> int:
    """Warm the matrix cache for a batch of configs (deduplicated).

    Campaign batch plans call this once per execution with the
    equivalence-class representatives, so matrix generation happens in
    one up-front pass (attributed to shared setup) instead of lazily
    inside each simulation. Returns the number of matrices actually
    computed (cache misses).
    """
    computed = 0
    seen = set()
    for config in configs:
        key = matrix_cache_key(config, exact_limit)
        if key in seen or key in _MATRIX_CACHE:
            continue
        seen.add(key)
        compute_shuffle_matrix(config, exact_limit)
        computed += 1
    return computed
