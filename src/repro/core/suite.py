"""The micro-benchmark suite runner.

:class:`MicroBenchmarkSuite` is the user-facing entry point: pick a
benchmark (MR-AVG / MR-RAND / MR-SKEW), a cluster, a network, and the
benchmark-level parameters from Sect. 3, then run single jobs or
parameter sweeps. Single-job runs return the simulated framework's
:class:`~repro.hadoop.result.SimJobResult`; sweeps return a
:class:`SweepResult` whose rows regenerate the paper's figures.

Sweep points are independent simulations, so :meth:`~MicroBenchmarkSuite.sweep`
and :meth:`~MicroBenchmarkSuite.run_trials` accept ``jobs=N`` to fan
points out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
Results are returned in the same deterministic order regardless of
``jobs`` (and each point's simulation is seeded and self-contained, so
the *times* are bit-identical too — asserted by the integration tests).

Completed points are also memoized in a process-wide cache keyed by the
full (config, cluster, jobconf, cost-model, fault-plan) tuple: the
figure benchmarks re-run several sweep points when deriving ratios and
summary tables, and those repeats are answered from the cache.

The memo cache can additionally be *backed* by a persistent
:class:`~repro.store.ResultStore` (``MicroBenchmarkSuite(store=...)``):
memo misses consult the store before simulating, and fresh simulations
are recorded to it — giving warm-start resume across processes. Disk
hits come back as lightweight :class:`~repro.store.StoredResult`
objects (same sweep/report surface, no task stats or event log); the
full caching contract is documented in ``docs/MODEL.md``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats import improvement_pct
from repro.analysis.tables import format_table
from repro.core.benchmarks import MicroBenchmark, get_benchmark
from repro.core.config import BenchmarkConfig
from repro.faults import FaultPlan
from repro.hadoop.cluster import ClusterSpec, cluster_a
from repro.hadoop.costmodel import CostModel
from repro.hadoop.job import JobConf
from repro.hadoop.result import SimJobResult
from repro.hadoop.simulation import run_simulated_job
from repro.net.transport import TransportModel
from repro.sim.trace import Tracer
from repro.store import ResultStore, StoredResult, point_components, point_key

#: What a cached-or-simulated point run returns: a full
#: :class:`SimJobResult` when simulated this process, a
#: :class:`~repro.store.StoredResult` when served from the disk store.
ResultLike = Union[SimJobResult, StoredResult]

BenchmarkLike = Union[str, MicroBenchmark]

#: Process-wide (config, cluster, jobconf, cost model, fault plan) ->
#: SimJobResult memo. All key components are frozen dataclasses, and
#: simulations are deterministic functions of the key (fault plans are
#: seeded), so sharing results is safe.
_RESULT_CACHE: Dict[tuple, SimJobResult] = {}

#: Cache bookkeeping for tests/diagnostics.
_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_result_cache() -> None:
    """Drop all memoized sweep results (mainly for tests)."""
    _RESULT_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def result_cache_stats() -> Dict[str, int]:
    """Copy of the memo cache hit/miss counters."""
    return dict(_CACHE_STATS, size=len(_RESULT_CACHE))


def _run_point(payload: tuple) -> SimJobResult:
    """Worker for parallel sweeps: simulate one fully-keyed point.

    Top-level so it pickles; receives the same tuple used as the memo
    cache key.
    """
    config, cluster, jobconf, cost_model, fault_plan = payload
    return run_simulated_job(
        config, cluster=cluster, jobconf=jobconf, cost_model=cost_model,
        fault_plan=fault_plan,
    )


@dataclass
class SweepRow:
    """One (benchmark, network, shuffle size) measurement."""

    benchmark: str
    network: str
    shuffle_gb: float
    execution_time: float
    #: The full result behind the row — a SimJobResult when simulated
    #: in this process, a StoredResult when served from the disk store.
    result: ResultLike = field(repr=False, default=None)  # type: ignore[assignment]


@dataclass
class SweepResult:
    """A grid of measurements across networks and shuffle sizes."""

    rows: List[SweepRow]

    def networks(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.network, None)
        return list(seen)

    def sizes(self) -> List[float]:
        seen: Dict[float, None] = {}
        for row in self.rows:
            seen.setdefault(row.shuffle_gb, None)
        return list(seen)

    def series(self, network: str) -> Tuple[List[float], List[float]]:
        """(shuffle GB, execution time) series for one network."""
        pts = [(r.shuffle_gb, r.execution_time) for r in self.rows
               if r.network == network]
        if not pts:
            raise KeyError(f"no rows for network {network!r}")
        pts.sort()
        return [p[0] for p in pts], [p[1] for p in pts]

    def time(self, network: str, shuffle_gb: float) -> float:
        for row in self.rows:
            if row.network == network and row.shuffle_gb == shuffle_gb:
                return row.execution_time
        raise KeyError(f"no row for ({network!r}, {shuffle_gb} GB)")

    def improvement(self, baseline: str, improved: str,
                    shuffle_gb: Optional[float] = None) -> float:
        """Mean percent improvement of one network over another."""
        sizes = [shuffle_gb] if shuffle_gb is not None else self.sizes()
        pcts = [
            improvement_pct(self.time(baseline, s), self.time(improved, s))
            for s in sizes
        ]
        return sum(pcts) / len(pcts)

    def to_table(self, title: str = "") -> str:
        """Paper-figure-style table: one row per size, one column per
        network."""
        networks = self.networks()
        headers = ["Shuffle (GB)"] + networks
        body = []
        for size in sorted(self.sizes()):
            body.append([size] + [round(self.time(n, size), 1)
                                  for n in networks])
        return format_table(headers, body, title=title)


class MicroBenchmarkSuite:
    """Runs the stand-alone MapReduce micro-benchmarks on a simulated
    cluster.

    Example::

        suite = MicroBenchmarkSuite(cluster=cluster_a(4))
        result = suite.run("MR-AVG", shuffle_gb=16, network="ipoib-qdr")
        print(result.execution_time)
    """

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        jobconf: Optional[JobConf] = None,
        cost_model: Optional[CostModel] = None,
        fault_plan: Optional[FaultPlan] = None,
        store: Optional[Union[ResultStore, str, Path]] = None,
    ):
        self.cluster = cluster if cluster is not None else cluster_a()
        self.jobconf = jobconf
        self.cost_model = cost_model
        #: Applied to every run/sweep point of this suite (seeded, so
        #: sweeps stay deterministic — including under ``jobs=N``).
        self.fault_plan = fault_plan
        #: Persistent result store backing the in-process memo cache
        #: (a directory path is coerced). ``None`` disables disk
        #: caching; the memo cache still applies.
        self.store: Optional[ResultStore] = (
            ResultStore(store) if isinstance(store, (str, Path)) else store
        )
        #: Memo-key -> store-key digest cache. A point's store key is a
        #: canonical-JSON digest (~0.5 ms); the batch executor derives
        #: it up to three times per point (lookup, keys list, record),
        #: so it is cached on the same full point key as the result
        #: memo.
        self._store_key_cache: Dict[tuple, str] = {}

    # -- single runs ----------------------------------------------------

    def run_config(
        self,
        config: BenchmarkConfig,
        transport: Optional[TransportModel] = None,
        monitor_interval: Optional[float] = None,
        memoize: bool = True,
        tracer: Optional[Tracer] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> ResultLike:
        """Run one fully-specified configuration.

        Results are memoized on the full (config, cluster, jobconf,
        cost model, fault plan) key unless ``memoize=False``. When the
        suite has a :attr:`store`, memo misses consult the disk store
        (returning a :class:`~repro.store.StoredResult` on a hit) and
        fresh simulations are recorded to it. Runs with a custom
        ``transport``, ``monitor_interval`` or ``tracer`` are never
        cached — in memory or on disk: the key cannot capture a
        transport instance, and monitored/traced results carry
        run-specific trace state. ``fault_plan`` overrides the
        suite-level plan for this run.
        """
        plan = fault_plan if fault_plan is not None else self.fault_plan
        if (memoize and transport is None and monitor_interval is None
                and tracer is None):
            key = self._point_key(config, plan)
            cached = _RESULT_CACHE.get(key)
            if cached is not None:
                _CACHE_STATS["hits"] += 1
                return cached
            _CACHE_STATS["misses"] += 1
            if self.store is not None:
                skey = self.store_key(config, plan)
                stored = self.store.get(skey)
                if stored is not None:
                    _RESULT_CACHE[key] = stored
                    return stored
            result = _run_point(key)
            _RESULT_CACHE[key] = result
            if self.store is not None:
                self.store.put(skey, StoredResult.from_sim_result(result),
                               provenance=self._provenance(config, plan))
            return result
        return run_simulated_job(
            config,
            cluster=self.cluster,
            jobconf=self.jobconf,
            cost_model=self.cost_model,
            transport=transport,
            monitor_interval=monitor_interval,
            tracer=tracer,
            fault_plan=plan,
        )

    def _point_key(self, config: BenchmarkConfig,
                   fault_plan: Optional[FaultPlan] = None) -> tuple:
        """Hashable key fully determining one simulation point."""
        plan = fault_plan if fault_plan is not None else self.fault_plan
        return (config, self.cluster, self.jobconf, self.cost_model, plan)

    # -- point-level execution hooks (campaign executor surface) ---------

    def point_payload(self, config: BenchmarkConfig) -> tuple:
        """The picklable payload that fully determines one point.

        This is exactly what :func:`_run_point` consumes, so an
        external executor (the hardened campaign engine, a future
        distributed runner) can dispatch points to worker processes
        without reaching into suite internals.
        """
        return self._point_key(config)

    def lookup_point(self, config: BenchmarkConfig) -> Optional[ResultLike]:
        """Serve one point from the memo cache or the disk store.

        Returns ``None`` on a true miss (the point must be simulated).
        Counts memo/store hits and misses exactly like
        :meth:`run_config` does, so counter-based acceptance checks
        ("the second run executed 0 simulations") keep holding when
        points run through an external executor.
        """
        key = self._point_key(config)
        cached = _RESULT_CACHE.get(key)
        if cached is not None:
            _CACHE_STATS["hits"] += 1
            return cached
        _CACHE_STATS["misses"] += 1
        if self.store is not None:
            stored = self.store.get(self.store_key(config))
            if stored is not None:
                _RESULT_CACHE[key] = stored
                return stored
        return None

    def lookup_points(
        self, configs: Sequence[BenchmarkConfig]
    ) -> List[Optional[ResultLike]]:
        """Serve many points from the memo cache and disk store at once.

        Semantically ``[self.lookup_point(c) for c in configs]`` —
        identical results and identical final counter values — but all
        memo misses are resolved against the store through one
        :meth:`~repro.store.ResultStore.get_batch` call (one counter
        lock) instead of one locked round-trip per point.
        """
        results: List[Optional[ResultLike]] = [None] * len(configs)
        store_queries: List[Tuple[int, str]] = []
        for i, config in enumerate(configs):
            key = self._point_key(config)
            cached = _RESULT_CACHE.get(key)
            if cached is not None:
                _CACHE_STATS["hits"] += 1
                results[i] = cached
                continue
            _CACHE_STATS["misses"] += 1
            if self.store is not None:
                store_queries.append((i, self.store_key(config)))
        if store_queries:
            stored = self.store.get_batch([k for _i, k in store_queries])
            for (i, _key), result in zip(store_queries, stored):
                if result is not None:
                    _RESULT_CACHE[self._point_key(configs[i])] = result
                    results[i] = result
        return results

    def record_point(self, config: BenchmarkConfig,
                     result: SimJobResult) -> None:
        """Memoize and persist one freshly simulated point.

        The completion half of the executor protocol: a worker process
        simulated ``point_payload(config)`` and the parent records the
        result (memo cache + disk store, with provenance).
        """
        _RESULT_CACHE[self._point_key(config)] = result
        if self.store is not None:
            self.store.put(self.store_key(config),
                           StoredResult.from_sim_result(result),
                           provenance=self._provenance(config))

    def record_points(
        self, entries: Iterable[Tuple[BenchmarkConfig, ResultLike]]
    ) -> None:
        """Memoize and persist many points with one store counter bump.

        The batch executor records a whole equivalence class (the
        representative's result replicated onto its siblings) through
        this; ``StoredResult`` values pass through to disk unchanged,
        so replicated records are byte-identical to loop-path records.
        An entry may carry an optional third element — a campaign tags
        dict written with the record (see
        :meth:`~repro.store.ResultStore.put_many`), which turns the
        runner's post-hoc tag pass into a read-only skip for that
        record.
        """
        puts: List[Tuple[str, StoredResult, Optional[dict],
                         Optional[dict]]] = []
        for entry in entries:
            config, result = entry[0], entry[1]
            tags = entry[2] if len(entry) > 2 else None
            _RESULT_CACHE[self._point_key(config)] = result
            if self.store is not None:
                stored = (result if isinstance(result, StoredResult)
                          else StoredResult.from_sim_result(result))
                puts.append((self.store_key(config), stored,
                             self._provenance(config), tags))
        if puts and self.store is not None:
            self.store.put_many(puts)

    def simulate_point(self, config: BenchmarkConfig) -> SimJobResult:
        """Simulate one point in-process and record it (no lookup).

        Used by the campaign executor's inline path after
        :meth:`lookup_point` missed, so hits and misses are counted
        exactly once per point.
        """
        result = _run_point(self.point_payload(config))
        self.record_point(config, result)
        return result

    def store_key(self, config: BenchmarkConfig,
                  fault_plan: Optional[FaultPlan] = None) -> str:
        """Stable content-addressed store key of one point (hex digest).

        Covers the same five components as the in-memory memo key plus
        the store schema version; see :func:`repro.store.point_key`.
        """
        plan = fault_plan if fault_plan is not None else self.fault_plan
        cache_key = self._point_key(config, plan)
        cached = self._store_key_cache.get(cache_key)
        if cached is not None:
            return cached
        key = point_key(config, self.cluster, jobconf=self.jobconf,
                        cost_model=self.cost_model, fault_plan=plan)
        self._store_key_cache[cache_key] = key
        return key

    def _provenance(self, config: BenchmarkConfig,
                    fault_plan: Optional[FaultPlan] = None) -> dict:
        """The canonical key document, stored alongside each record."""
        plan = fault_plan if fault_plan is not None else self.fault_plan
        return point_components(config, self.cluster, jobconf=self.jobconf,
                                cost_model=self.cost_model, fault_plan=plan)

    def run(
        self,
        benchmark: BenchmarkLike,
        shuffle_gb: Optional[float] = None,
        transport: Optional[TransportModel] = None,
        monitor_interval: Optional[float] = None,
        memoize: bool = True,
        tracer: Optional[Tracer] = None,
        fault_plan: Optional[FaultPlan] = None,
        **config_kwargs: object,
    ) -> ResultLike:
        """Run a named benchmark.

        ``shuffle_gb`` sizes the job by total shuffle volume (the
        paper's convention); alternatively pass ``num_pairs`` directly
        in ``config_kwargs``.
        """
        bench = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
        if shuffle_gb is not None:
            config = BenchmarkConfig.from_shuffle_size(
                shuffle_gb * 1e9, pattern=bench.pattern, **config_kwargs)
        else:
            config = bench.configure(**config_kwargs)
        return self.run_config(config, transport=transport,
                               monitor_interval=monitor_interval,
                               memoize=memoize, tracer=tracer,
                               fault_plan=fault_plan)

    # -- sweeps ------------------------------------------------------------

    def sweep(
        self,
        benchmark: BenchmarkLike,
        shuffle_gbs: Sequence[float],
        networks: Sequence[str],
        jobs: int = 1,
        memoize: bool = True,
        **config_kwargs: object,
    ) -> SweepResult:
        """Execution time across shuffle sizes x networks (Figs. 2-6).

        ``jobs > 1`` runs the grid points on a process pool; row order
        (and every simulated time) is identical to the serial run.
        """
        bench = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
        configs = [
            BenchmarkConfig.from_shuffle_size(
                size * 1e9, pattern=bench.pattern, network=network,
                **config_kwargs)
            for size in shuffle_gbs
            for network in networks
        ]
        sizes = [size for size in shuffle_gbs for _network in networks]
        results = self._run_points(configs, jobs=jobs, memoize=memoize)
        rows = [
            SweepRow(
                benchmark=bench.name,
                network=result.interconnect_name,
                shuffle_gb=size,
                execution_time=result.execution_time,
                result=result,
            )
            for size, result in zip(sizes, results)
        ]
        return SweepResult(rows)

    def _run_points(
        self,
        configs: Sequence[BenchmarkConfig],
        jobs: int = 1,
        memoize: bool = True,
    ) -> List[ResultLike]:
        """Run many fully-specified points, optionally on a process pool.

        Results come back in ``configs`` order regardless of ``jobs``
        (``executor.map`` preserves input order). Points already in the
        memo cache or the disk store are served locally; only the true
        misses are dispatched, and their results are recorded to the
        store afterwards.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        keys = [self._point_key(config) for config in configs]
        if jobs == 1 or len(configs) < 2:
            return [
                self.run_config(config, memoize=memoize) for config in configs
            ]
        results: List[Optional[ResultLike]] = [None] * len(keys)
        pending: List[int] = []
        for i, config in enumerate(configs):
            if memoize:
                found = self.lookup_point(config)
                if found is not None:
                    results[i] = found
                    continue
            pending.append(i)
        if pending:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                for i, result in zip(
                    pending, pool.map(_run_point, [keys[i] for i in pending])
                ):
                    results[i] = result
                    if memoize:
                        self.record_point(configs[i], result)
        return results  # type: ignore[return-value]

    def compare_patterns(
        self,
        shuffle_gb: float,
        networks: Sequence[str],
        **config_kwargs: object,
    ) -> Dict[str, SweepResult]:
        """All three distribution patterns over the given networks."""
        out = {}
        for name in ("MR-AVG", "MR-RAND", "MR-SKEW"):
            out[name] = self.sweep(name, [shuffle_gb], networks,
                                   **config_kwargs)
        return out

    def run_trials(
        self,
        benchmark: BenchmarkLike,
        trials: int,
        shuffle_gb: Optional[float] = None,
        base_seed: int = 20140901,
        jobs: int = 1,
        memoize: bool = True,
        **config_kwargs: object,
    ) -> List[float]:
        """Run a benchmark ``trials`` times with varied seeds.

        The paper fixes the seed so cross-network comparisons see the
        identical record-to-reducer mapping; this method quantifies how
        much that mapping matters by re-drawing it. For MR-AVG the
        variance is zero by construction (round-robin); for MR-RAND and
        MR-SKEW the spread reflects genuine placement luck. Returns the
        execution times, one per trial (trial order; ``jobs > 1`` runs
        trials on a process pool without changing order or values).
        """
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        bench = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
        configs = []
        for trial in range(trials):
            seed = base_seed + trial * 9973
            if shuffle_gb is not None:
                config = BenchmarkConfig.from_shuffle_size(
                    shuffle_gb * 1e9, pattern=bench.pattern, seed=seed,
                    **config_kwargs)
            else:
                config = bench.configure(seed=seed, **config_kwargs)
            configs.append(config)
        results = self._run_points(configs, jobs=jobs, memoize=memoize)
        return [result.execution_time for result in results]
