"""Command-line drivers: ``mr-microbench`` and ``repro``.

``mr-microbench`` mirrors the paper suite's invocation style: pick a
micro-benchmark and the benchmark/framework parameters, get the
configuration echo, resource-utilization statistics and the job
execution time. ``--store DIR`` backs the run with the persistent
result store (or set ``$REPRO_STORE``); ``--no-store`` disables it.

``repro`` is the campaign/store/book toolchain built on
:mod:`repro.store`, :mod:`repro.campaign` and
:mod:`repro.analysis.book`.

Examples::

    mr-microbench --benchmark MR-AVG --shuffle-gb 16 --network ipoib-qdr
    mr-microbench --benchmark MR-SKEW --network 1gige --maps 16 --reduces 8
    mr-microbench --benchmark MR-RAND --data-type Text --monitor 2
    mr-microbench --sweep 4,8,16 --networks 1gige,ipoib-qdr --store .repro-store

    repro campaign run benchmarks/campaigns/fig2.json --store .repro-store
    repro store stats --store .repro-store
    repro book out/book --store .repro-store
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.benchmarks import EXTENDED_BENCHMARKS
from repro.core.config import SUPPORTED_DATA_TYPES, BenchmarkConfig
from repro.core.report import (render_phase_table, render_report,
                               render_stored_report)
from repro.core.suite import MicroBenchmarkSuite
from repro.hadoop.cluster import cluster_a, cluster_b
from repro.hadoop.job import JobConf
from repro.hadoop.runtime import available_runtimes
from repro.net.interconnect import INTERCONNECTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mr-microbench",
        description=(
            "Stand-alone Hadoop MapReduce micro-benchmark suite "
            "(simulated reproduction of Shankar et al., BPOE 2014)"
        ),
    )
    parser.add_argument(
        "--benchmark", default="MR-AVG",
        choices=sorted({b.name for b in EXTENDED_BENCHMARKS}),
        help="distribution pattern micro-benchmark to run",
    )
    parser.add_argument(
        "--workload", default=None,
        help="run a real-world workload profile instead of a raw "
             "benchmark (wordcount, terasort, inverted-index, "
             "session-aggregation, hash-join); overrides --benchmark, "
             "key/value sizes and data type",
    )
    parser.add_argument("--network", default="1GigE",
                        help="interconnect, by canonical name or alias "
                             f"({', '.join(sorted(INTERCONNECTS))})")
    size = parser.add_mutually_exclusive_group()
    size.add_argument("--shuffle-gb", type=float, default=None,
                      help="total intermediate shuffle data size in GB")
    size.add_argument("--num-pairs", type=int, default=None,
                      help="total key/value pairs to generate")
    parser.add_argument("--key-size", type=int, default=512,
                        help="key payload bytes")
    parser.add_argument("--value-size", type=int, default=512,
                        help="value payload bytes")
    parser.add_argument("--data-type", default="BytesWritable",
                        choices=SUPPORTED_DATA_TYPES,
                        help="Writable type for keys and values")
    parser.add_argument("--maps", type=int, default=16,
                        help="number of map tasks")
    parser.add_argument("--reduces", type=int, default=8,
                        help="number of reduce tasks")
    parser.add_argument("--seed", type=int, default=20140901)
    parser.add_argument("--cluster", default="a", choices=("a", "b"),
                        help="testbed: a=Westmere, b=Stampede")
    parser.add_argument("--slaves", type=int, default=None,
                        help="number of slave nodes (default: paper setup)")
    parser.add_argument("--framework", default="mrv1",
                        choices=available_runtimes(),
                        help="Hadoop runtime generation (1.x slots or "
                             "2.x YARN), from the runtime registry")
    parser.add_argument("--monitor", type=float, default=None, metavar="SEC",
                        help="sample CPU/network utilization every SEC "
                             "simulated seconds")
    parser.add_argument("--sweep", default=None, metavar="GB,GB,...",
                        help="sweep mode: comma-separated shuffle sizes in "
                             "GB; prints a size x network table instead of "
                             "a single-run report")
    parser.add_argument("--networks", default=None, metavar="NET,NET,...",
                        help="networks for --sweep (default: the single "
                             "--network)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="run sweep points on N worker processes "
                             "(results are identical to -j 1)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="also write the sweep as CSV to PATH")
    parser.add_argument("--timeline", action="store_true",
                        help="print an ASCII Gantt chart of all tasks")
    parser.add_argument("--history-json", default=None, metavar="PATH",
                        help="write the job history record as JSON to PATH")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record the structured phase trace and write "
                             "it as Chrome trace_event JSON to PATH "
                             "(viewable in Perfetto)")
    parser.add_argument("--phase-report", action="store_true",
                        help="print the per-node phase breakdown table "
                             "(map / spill-merge / shuffle / merge / reduce)")
    faults = parser.add_argument_group(
        "fault injection",
        "deterministic, seeded fault injection (see docs/MODEL.md); "
        "flags layer on top of --fault-plan",
    )
    faults.add_argument("--fault-plan", default=None, metavar="PLAN.json",
                        help="inject faults from a JSON FaultPlan file")
    faults.add_argument("--task-failure-prob", type=float, default=None,
                        metavar="P",
                        help="per-attempt task failure probability "
                             "(seeded coin, 0 <= P < 1)")
    faults.add_argument("--kill-node", action="append", default=None,
                        metavar="NODE@T",
                        help="crash NODE at simulated time T seconds "
                             "(repeatable, e.g. slave1@30)")
    faults.add_argument("--slow-node", action="append", default=None,
                        metavar="NODE:FACTOR",
                        help="slow NODE's CPU and NIC by FACTOR "
                             "(repeatable, e.g. slave0:2)")
    caching = parser.add_argument_group(
        "result caching",
        "persistent content-addressed result store (docs/MODEL.md, "
        "'The caching contract')",
    )
    caching.add_argument("--store", default=None, metavar="ROOT",
                         help="back runs with the persistent result store "
                              "at ROOT: a directory, or sqlite:PATH for "
                              "the SQLite backend (default: $REPRO_STORE "
                              "when set)")
    caching.add_argument("--no-store", action="store_true",
                         help="disable the disk store even if "
                              "$REPRO_STORE is set")
    return parser


def _store_from_args(args):
    """The ResultStore selected by --store/--no-store/$REPRO_STORE."""
    from repro.store import ResultStore, default_store_root

    if getattr(args, "no_store", False):
        return None
    root = args.store if args.store is not None else default_store_root()
    return ResultStore(root) if root else None


def _build_fault_plan(args):
    """Assemble the run's FaultPlan from --fault-plan plus flag-level
    faults; returns ``None`` when nothing is injected."""
    from repro.faults import FaultPlan, NodeCrash, SlowNode

    plan = (FaultPlan.load(args.fault_plan) if args.fault_plan
            else FaultPlan())
    crashes = []
    for spec in args.kill_node or ():
        node, sep, at = spec.partition("@")
        if not node or not sep:
            raise ValueError(
                f"--kill-node expects NODE@TIME (e.g. slave1@30), got {spec!r}"
            )
        try:
            when = float(at)
        except ValueError:
            raise ValueError(
                f"--kill-node time must be a number, got {at!r}"
            ) from None
        crashes.append(NodeCrash(node, at_time=when))
    slows = []
    for spec in args.slow_node or ():
        node, sep, factor = spec.partition(":")
        if not node or not sep:
            raise ValueError(
                f"--slow-node expects NODE:FACTOR (e.g. slave0:2), got {spec!r}"
            )
        try:
            slowdown = float(factor)
        except ValueError:
            raise ValueError(
                f"--slow-node factor must be a number, got {factor!r}"
            ) from None
        slows.append(SlowNode(node, cpu_factor=slowdown,
                              nic_factor=slowdown))
    plan = plan.with_overrides(
        task_failure_probability=args.task_failure_prob,
        node_crashes=crashes,
        slow_nodes=slows,
    )
    return None if plan.is_noop() else plan


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    factory = cluster_a if args.cluster == "a" else cluster_b
    cluster = factory(args.slaves) if args.slaves else factory()
    jobconf = JobConf(version=args.framework)
    try:
        fault_plan = _build_fault_plan(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # --timeline / --history-json need a live SimJobResult (task events,
    # full history); a warm store hit only carries the durable subset.
    store = (None if (args.timeline or args.history_json)
             else _store_from_args(args))
    suite = MicroBenchmarkSuite(cluster=cluster, jobconf=jobconf,
                                fault_plan=fault_plan, store=store)

    pattern = args.benchmark.split("-")[1].lower()
    common = dict(
        pattern=pattern,
        key_size=args.key_size,
        value_size=args.value_size,
        num_maps=args.maps,
        num_reduces=args.reduces,
        data_type=args.data_type,
        seed=args.seed,
    )
    tracer = None
    if args.trace is not None:
        from repro.sim.trace import Tracer

        tracer = Tracer()
    try:
        if args.workload is not None:
            from repro.core.workloads import get_workload

            profile = get_workload(args.workload)
            shuffle_gb = args.shuffle_gb if args.shuffle_gb is not None else 4.0
            config = profile.configure(
                shuffle_gb=shuffle_gb,
                num_maps=args.maps,
                num_reduces=args.reduces,
                network=args.network,
                seed=args.seed,
            )
        elif args.sweep is not None:
            return _run_sweep(suite, args, common)
        elif args.num_pairs is not None:
            config = BenchmarkConfig(num_pairs=args.num_pairs,
                                     network=args.network, **common)
        else:
            shuffle_gb = args.shuffle_gb if args.shuffle_gb is not None else 4.0
            config = BenchmarkConfig.from_shuffle_size(
                shuffle_gb * 1e9, network=args.network, **common)
        result = suite.run_config(config, monitor_interval=args.monitor,
                                  tracer=tracer)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.store import StoredResult

    if isinstance(result, StoredResult):
        print(render_stored_report(result))
    else:
        print(render_report(result))
    if args.phase_report:
        print()
        print(render_phase_table(result))
    if args.timeline:
        from repro.hadoop.history import render_timeline

        print("\nTask timeline:")
        print(render_timeline(result))
    if args.history_json:
        from repro.hadoop.history import history_json

        with open(args.history_json, "w") as handle:
            handle.write(history_json(result))
        print(f"\njob history written to {args.history_json}")
    if args.trace is not None:
        from repro.analysis.export import write_chrome_trace

        write_chrome_trace(args.trace, result.trace)
        print(f"\nchrome trace written to {args.trace}")
    return 0


def _run_sweep(suite: MicroBenchmarkSuite, args, common: dict) -> int:
    from repro.analysis.export import sweep_to_csv, write_csv

    sizes = [float(s) for s in args.sweep.split(",") if s.strip()]
    if not sizes:
        print("error: --sweep needs at least one size", file=sys.stderr)
        return 2
    networks = (
        [n.strip() for n in args.networks.split(",") if n.strip()]
        if args.networks
        else [args.network]
    )
    # The benchmark name determines the pattern; sweep() applies it.
    sweep_kwargs = {k: v for k, v in common.items() if k != "pattern"}
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    sweep = suite.sweep(args.benchmark, sizes, networks, jobs=args.jobs,
                        **sweep_kwargs)
    print(sweep.to_table(
        title=f"{args.benchmark} job execution time (s) [{args.framework}]"))
    if args.csv:
        write_csv(args.csv, sweep_to_csv(sweep))
        print(f"\ncsv written to {args.csv}")
    return 0


def build_repro_parser() -> argparse.ArgumentParser:
    """The ``repro`` command: store / campaign / book subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Campaign, result-store and Experiment Book toolchain for "
            "the micro-benchmark suite"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default=None, metavar="ROOT",
                       help="result store root: a directory, or "
                            "sqlite:PATH for the SQLite backend "
                            "(default: $REPRO_STORE, else .repro-store)")

    store = sub.add_parser("store", help="inspect or maintain a result "
                                         "store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    stats = store_sub.add_parser("stats", help="record counts and lifetime "
                                               "put/hit/miss counters")
    add_store_arg(stats)
    stats.add_argument("--json", action="store_true",
                       help="emit the stats as one JSON object "
                            "(for automation; hit_rate is a float "
                            "0-100, or null with no lookups)")
    verify = store_sub.add_parser(
        "verify", help="fsck every record: parses, matches its key, "
                       "matches the schema, provenance hashes back")
    add_store_arg(verify)
    verify.add_argument("--gc", action="store_true",
                        help="sweep records that fail verification")
    ls = store_sub.add_parser("ls", help="list stored point keys")
    add_store_arg(ls)
    ls.add_argument("--long", "-l", action="store_true",
                    help="also show benchmark, network, size and "
                         "campaign tags per record")
    ls.add_argument("--campaign", default=None, metavar="NAME",
                    help="only records tagged by campaign NAME")
    gc = store_sub.add_parser("gc", help="remove stale (wrong-schema or "
                                         "unreadable) records")
    add_store_arg(gc)
    gc.add_argument("--all", action="store_true",
                    help="remove every record, not just stale ones")
    export = store_sub.add_parser("export", help="dump records as JSON "
                                                 "Lines")
    add_store_arg(export)
    export.add_argument("--output", "-o", default=None, metavar="PATH",
                        help="write to PATH instead of stdout")
    migrate = store_sub.add_parser(
        "migrate", help="copy one store into another (any backend to "
                        "any backend), key-for-key and byte-identical")
    migrate.add_argument("source", metavar="SRC",
                         help="source store root (directory or "
                              "sqlite:PATH)")
    migrate.add_argument("destination", metavar="DST",
                         help="destination store root (directory or "
                              "sqlite:PATH)")

    campaign = sub.add_parser("campaign", help="run declarative benchmark "
                                               "campaigns")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def add_campaign_exec_args(p: argparse.ArgumentParser) -> None:
        """Flags shared by ``campaign run`` and ``campaign resume``."""
        p.add_argument("spec", metavar="SPEC",
                       help="campaign spec file (TOML or JSON)")
        p.add_argument("--name", default=None,
                       help="campaign to run when SPEC holds several")
        add_store_arg(p)
        p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                       help="simulate cache misses on N worker processes")
        p.add_argument("--quiet", "-q", action="store_true",
                       help="suppress per-point progress lines")
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry each failing point up to N times with "
                            "exponential backoff (default: 0)")
        p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-point wall-clock limit; a worker that "
                            "exceeds it is terminated (attempt counts as "
                            "a retryable failure)")
        p.add_argument("--backoff", type=float, default=0.1, metavar="SEC",
                       help="base backoff before the first retry "
                            "(doubles per retry; default: 0.1)")
        mode = p.add_mutually_exclusive_group()
        mode.add_argument("--fail-fast", action="store_true",
                          help="abort the campaign at the first "
                               "quarantined point (exit 1)")
        mode.add_argument("--keep-going", action="store_true",
                          help="exit 0 even when points were quarantined "
                               "(default: complete the campaign but "
                               "exit 1)")
        batching = p.add_mutually_exclusive_group()
        batching.add_argument("--batch", dest="batch", action="store_true",
                              default=None,
                              help="force the equivalence-class batch "
                                   "scheduler (default: auto)")
        batching.add_argument("--no-batch", dest="batch",
                              action="store_false",
                              help="force the strict per-point loop")
        p.add_argument("--profile", action="store_true",
                       help="print the per-stage wall-clock breakdown "
                            "(expand / store-lookup / shared-setup / "
                            "simulate / record) after the campaign")
        p.add_argument("--backend", choices=("local", "pool"),
                       default="local",
                       help="execution backend for cache misses: "
                            "'local' supervises worker processes "
                            "in-process (default); 'pool' coordinates "
                            "socket-connected `repro worker` processes "
                            "with lease-based failover")
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="[pool] spawn N local workers (default: "
                            "--jobs); 0 spawns none - print the listen "
                            "address and wait for external `repro "
                            "worker --connect` processes")
        p.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="[pool] coordinator listen address "
                            "(default: 127.0.0.1:0, an ephemeral port)")
        p.add_argument("--lease", type=float, default=None, metavar="SEC",
                       help="[pool] heartbeat lease; a worker silent "
                            "this long is declared dead and its unit "
                            "reassigned (default: 15)")
        p.add_argument("--drain-timeout", type=float, default=None,
                       metavar="SEC",
                       help="[pool] grace for in-flight units after "
                            "SIGINT before they are abandoned "
                            "(default: 30)")

    run = campaign_sub.add_parser(
        "run", help="execute a campaign spec through the store "
                    "(skip-on-hit; failures are quarantined, not fatal)")
    add_campaign_exec_args(run)
    resume = campaign_sub.add_parser(
        "resume", help="re-run only the campaign's missing and "
                       "quarantined points (after a crash, interrupt, "
                       "or partial failure)")
    add_campaign_exec_args(resume)

    serve = sub.add_parser(
        "serve", help="run the benchmark service: an HTTP front end "
                      "answering point queries warm from the store and "
                      "cold through the campaign executor")
    add_store_arg(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8713,
                       help="TCP port to bind; 0 picks a free one "
                            "(default: 8713)")
    serve.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                       help="simulate cold points on N worker processes")
    serve.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry each failing point up to N times "
                            "before quarantining it (default: 0)")
    serve.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-point wall-clock limit for cold "
                            "simulations")
    serve.add_argument("--backoff", type=float, default=0.1, metavar="SEC",
                       help="base backoff before the first retry "
                            "(default: 0.1)")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="cold-point queue bound; excess queries get "
                            "a 503 (default: 256)")
    serve_batching = serve.add_mutually_exclusive_group()
    serve_batching.add_argument("--batch", dest="batch",
                                action="store_true", default=None,
                                help="force the equivalence-class batch "
                                     "scheduler for cold points "
                                     "(default: auto)")
    serve_batching.add_argument("--no-batch", dest="batch",
                                action="store_false",
                                help="force the strict per-point loop")
    serve.add_argument("--backend", choices=("local", "pool"),
                       default="local",
                       help="execution backend for cold points "
                            "(default: local)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="[pool] spawn N local workers "
                            "(default: --jobs)")

    worker = sub.add_parser(
        "worker", help="join a distributed campaign worker pool "
                       "(dial a `repro campaign run --backend pool` "
                       "coordinator)")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address printed by "
                             "`repro campaign run --backend pool`")
    worker.add_argument("--connect-timeout", type=float, default=30.0,
                        metavar="SEC",
                        help="give up if the coordinator is "
                             "unreachable (default: 30)")

    book = sub.add_parser("book", help="render the Experiment Book from "
                                       "store contents")
    book.add_argument("out_dir", metavar="OUT",
                      help="output directory for the Markdown pages")
    add_store_arg(book)
    book.add_argument("--campaign", action="append", default=None,
                      metavar="NAME",
                      help="restrict to campaign NAME (repeatable; "
                           "default: everything tagged in the store)")
    book.add_argument("--title", default="Experiment Book",
                      help="index page title")
    return parser


def _repro_store(args):
    """The store a ``repro`` subcommand operates on (always set)."""
    from repro.store import ResultStore, default_store_root

    root = args.store or default_store_root() or ".repro-store"
    return ResultStore(root)


def _render_quarantine_entry(key: str, entry: dict) -> str:
    """One quarantine-ledger line with its per-attempt history."""
    label = entry.get("label") or key[:16]
    attempts = entry.get("attempts") or 0
    line = f"{label}: {attempts} attempt(s)"
    history = entry.get("history") or []
    for event in history:
        kind = event.get("kind", "error")
        worker = event.get("worker") or "?"
        wall = event.get("wall_time") or 0.0
        line += (f"\n    attempt {event.get('attempt', '?')}: {kind} "
                 f"on {worker} after {wall:.2f}s"
                 + (f" - {event['error']}" if event.get("error") else ""))
    if not history and entry.get("error"):
        line += f" - {entry['error']}"
    return line


def _cmd_store(args) -> int:
    if args.store_command == "migrate":
        return _cmd_store_migrate(args)
    store = _repro_store(args)
    if args.store_command == "stats":
        from repro.store import hit_rate

        stats = store.stats()
        rate = hit_rate(stats)
        if args.json:
            import json

            stats["hit_rate"] = rate
            print(json.dumps(stats, indent=1, sort_keys=True))
            return 0
        stats["hit_rate"] = f"{rate:.1f}%" if rate is not None else "n/a"
        width = max(len(k) for k in stats)
        for key in ("root", "backend", "schema", "records",
                    "stale_records", "bytes", "puts", "hits", "misses",
                    "hit_rate", "quarantined", "leases"):
            print(f"{key.ljust(width)} : {stats[key]}")
        return 0
    if args.store_command == "verify":
        report = store.verify(gc=args.gc)
        for problem in report.problems:
            print(problem.render())
        quarantined = store.quarantine()
        if quarantined:
            print(f"{len(quarantined)} quarantined point(s):")
            for key, entry in sorted(quarantined.items()):
                print("  " + _render_quarantine_entry(key, entry))
        state = "OK" if report.clean else "PROBLEMS FOUND"
        print(f"verified {report.checked} record(s): {report.ok} ok, "
              f"{len(report.problems)} bad"
              + (f", {report.swept} swept" if args.gc else "")
              + f"  [{state}]")
        if not report.meta_ok:
            print(f"warning: metadata of the {store.describe()} is "
                  f"corrupt (counters will reinitialize)", file=sys.stderr)
        if report.clean or (args.gc and report.swept == len(report.problems)):
            return 0
        return 1
    if args.store_command == "ls":
        if not args.long:
            keys = (store.campaign_keys(args.campaign)
                    if args.campaign else store.keys())
            for key in keys:
                print(key)
            return 0
        from repro.store import StoredResult

        for key, record in store.records():
            if args.campaign and args.campaign not in (
                    record.get("tags") or {}):
                continue
            try:
                result = StoredResult.from_dict(record["result"])
            except (KeyError, ValueError):
                print(f"{key[:16]}  (unreadable result payload)")
                continue
            tags = ",".join(sorted(record.get("tags") or {})) or "-"
            print(f"{key[:16]}  {result.summary()['benchmark']:<8}"
                  f" {result.runtime:<5}"
                  f" {result.config.shuffle_bytes / 1e9:6.2f} GB"
                  f"  {result.interconnect_name:<20}"
                  f" {result.execution_time:8.2f} s  {tags}")
        return 0
    if args.store_command == "gc":
        removed = store.gc(remove_all=args.all)
        print(f"removed {removed} record(s) from {store.root}")
        return 0
    if args.store_command == "export":
        lines = list(store.export())
        if args.output:
            with open(args.output, "w") as handle:
                handle.write("\n".join(lines) + ("\n" if lines else ""))
            print(f"exported {len(lines)} record(s) to {args.output}")
        else:
            for line in lines:
                print(line)
        return 0
    raise AssertionError(args.store_command)


def _cmd_store_migrate(args) -> int:
    from repro.store import migrate_store

    try:
        report = migrate_store(args.source, args.destination)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0


def _make_pool_backend(args):
    """A started PoolBackend per the campaign/serve CLI flags."""
    from repro.campaign.pool import PoolBackend
    from repro.campaign.worker import _parse_endpoint

    workers = args.workers if args.workers is not None else args.jobs
    if workers < 0:
        raise ValueError("--workers must be >= 0")
    kwargs = {}
    if args.lease is not None:
        kwargs["lease"] = args.lease
    if args.drain_timeout is not None:
        kwargs["drain_timeout"] = args.drain_timeout
    backend = PoolBackend(bind=_parse_endpoint(args.bind),
                          workers=workers, **kwargs)
    backend.ensure_started()
    host, port = backend.address
    print(f"pool coordinator listening on {host}:{port}"
          + ("" if workers else
             f" - join with: repro worker --connect {host}:{port}"),
          flush=True)
    return backend


def _cmd_campaign(args) -> int:
    from repro.campaign import (ExecutionBackendError, RetryPolicy,
                                load_campaign, run_campaign)

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    campaign = load_campaign(args.spec, name=args.name)
    store = _repro_store(args)
    try:
        policy = RetryPolicy(retries=args.retries, backoff=args.backoff,
                             timeout=args.timeout)
        backend = (_make_pool_backend(args)
                   if args.backend == "pool" else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.campaign_command == "resume":
        # Quarantined points get a fresh set of attempts; completed
        # points are served from the store (skip-on-hit), so only the
        # gap re-runs. Print each point's attempt history first — the
        # post-mortem would be gone after the clear.
        keys = _campaign_keys(campaign, store)
        ledger = store.quarantine()
        held = {key: ledger[key] for key in keys if key in ledger}
        for key, entry in held.items():
            print("quarantined " + _render_quarantine_entry(key, entry))
        cleared = store.quarantine_clear(keys)
        if cleared:
            print(f"cleared {cleared} quarantined point(s); retrying")
    progress = None if args.quiet else (
        lambda p: print(p.render(), flush=True))
    try:
        outcome = run_campaign(campaign, store=store, jobs=args.jobs,
                               progress=progress, policy=policy,
                               fail_fast=args.fail_fast, batch=args.batch,
                               backend=backend)
    except ExecutionBackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if backend is not None:
            backend.close()
    print(f"campaign {campaign.name}: {len(outcome.outcomes)} points, "
          f"{outcome.executed} simulated, {outcome.from_store} from "
          f"the store, {outcome.failed} failed"
          + (f", {outcome.skipped} skipped" if outcome.skipped else "")
          + (" [interrupted]" if outcome.interrupted else ""),
          flush=True)
    if args.profile:
        stages = ["expand", "store-lookup", "shared-setup", "simulate",
                  "record"]
        print("stage breakdown:")
        for stage in stages:
            print(f"  {stage.ljust(12)} : "
                  f"{outcome.profile.get(stage, 0.0):9.3f} s")
        extra = sorted(set(outcome.profile) - set(stages))
        for stage in extra:
            print(f"  {stage.ljust(12)} : {outcome.profile[stage]:9.3f} s")
        print(f"  {'total'.ljust(12)} : "
              f"{sum(outcome.profile.values()):9.3f} s")
        if outcome.batched and outcome.executed:
            print(f"  batch plan: {outcome.executed} cold point(s) -> "
                  f"{outcome.unique_simulations} unique simulation(s)")
    if outcome.failed:
        print(f"{outcome.failed} point(s) quarantined in "
              f"{store.quarantine_location}; `repro campaign resume "
              f"{args.spec}` retries them", file=sys.stderr)
    if outcome.interrupted:
        return 130
    if outcome.failed and not args.keep_going:
        return 1
    return 0


def _campaign_keys(campaign, store):
    """Store keys of every grid point of a campaign."""
    from repro.core.suite import MicroBenchmarkSuite

    suite = MicroBenchmarkSuite(
        cluster=campaign.cluster_spec(), jobconf=campaign.jobconf(),
        fault_plan=campaign.fault_plan, store=store,
    )
    return [suite.store_key(p.config) for p in campaign.points()]


def _cmd_serve(args) -> int:
    from repro.campaign import RetryPolicy
    from repro.service import BenchmarkService, run_server

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    backend = None
    try:
        policy = RetryPolicy(retries=args.retries, backoff=args.backoff,
                             timeout=args.timeout)
        if args.backend == "pool":
            args.bind = "127.0.0.1:0"
            args.lease = args.drain_timeout = None
            backend = _make_pool_backend(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.max_queue is not None:
        kwargs["max_queue"] = args.max_queue
    service = BenchmarkService(_repro_store(args), policy=policy,
                               jobs=args.jobs, batch=args.batch,
                               execution_backend=backend, **kwargs)

    def ready(host: str, port: int) -> None:
        print(f"serving {service.store.describe()} "
              f"on http://{host}:{port}", flush=True)

    try:
        return run_server(service, host=args.host, port=args.port,
                          ready=ready)
    finally:
        if backend is not None:
            backend.close()


def _cmd_worker(args) -> int:
    from repro.campaign.worker import main as worker_main

    return worker_main(["--connect", args.connect,
                        "--connect-timeout", str(args.connect_timeout)])


def _cmd_book(args) -> int:
    from repro.analysis.book import build_book

    written = build_book(_repro_store(args), args.out_dir,
                         campaigns=args.campaign, title=args.title)
    for path in written:
        print(f"wrote {path}")
    return 0


def repro_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` command."""
    args = build_repro_parser().parse_args(argv)
    try:
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "book":
            return _cmd_book(args)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(args.command)


if __name__ == "__main__":
    sys.exit(main())
