"""Command-line driver: ``mr-microbench``.

Mirrors the paper suite's invocation style: pick a micro-benchmark and
the benchmark/framework parameters, get the configuration echo,
resource-utilization statistics and the job execution time.

Examples::

    mr-microbench --benchmark MR-AVG --shuffle-gb 16 --network ipoib-qdr
    mr-microbench --benchmark MR-SKEW --network 1gige --maps 16 --reduces 8
    mr-microbench --benchmark MR-RAND --data-type Text --monitor 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.benchmarks import EXTENDED_BENCHMARKS
from repro.core.config import SUPPORTED_DATA_TYPES, BenchmarkConfig
from repro.core.report import render_phase_table, render_report
from repro.core.suite import MicroBenchmarkSuite
from repro.hadoop.cluster import cluster_a, cluster_b
from repro.hadoop.job import JobConf
from repro.hadoop.runtime import available_runtimes
from repro.net.interconnect import INTERCONNECTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mr-microbench",
        description=(
            "Stand-alone Hadoop MapReduce micro-benchmark suite "
            "(simulated reproduction of Shankar et al., BPOE 2014)"
        ),
    )
    parser.add_argument(
        "--benchmark", default="MR-AVG",
        choices=sorted({b.name for b in EXTENDED_BENCHMARKS}),
        help="distribution pattern micro-benchmark to run",
    )
    parser.add_argument(
        "--workload", default=None,
        help="run a real-world workload profile instead of a raw "
             "benchmark (wordcount, terasort, inverted-index, "
             "session-aggregation, hash-join); overrides --benchmark, "
             "key/value sizes and data type",
    )
    parser.add_argument("--network", default="1GigE",
                        help="interconnect, by canonical name or alias "
                             f"({', '.join(sorted(INTERCONNECTS))})")
    size = parser.add_mutually_exclusive_group()
    size.add_argument("--shuffle-gb", type=float, default=None,
                      help="total intermediate shuffle data size in GB")
    size.add_argument("--num-pairs", type=int, default=None,
                      help="total key/value pairs to generate")
    parser.add_argument("--key-size", type=int, default=512,
                        help="key payload bytes")
    parser.add_argument("--value-size", type=int, default=512,
                        help="value payload bytes")
    parser.add_argument("--data-type", default="BytesWritable",
                        choices=SUPPORTED_DATA_TYPES,
                        help="Writable type for keys and values")
    parser.add_argument("--maps", type=int, default=16,
                        help="number of map tasks")
    parser.add_argument("--reduces", type=int, default=8,
                        help="number of reduce tasks")
    parser.add_argument("--seed", type=int, default=20140901)
    parser.add_argument("--cluster", default="a", choices=("a", "b"),
                        help="testbed: a=Westmere, b=Stampede")
    parser.add_argument("--slaves", type=int, default=None,
                        help="number of slave nodes (default: paper setup)")
    parser.add_argument("--framework", default="mrv1",
                        choices=available_runtimes(),
                        help="Hadoop runtime generation (1.x slots or "
                             "2.x YARN), from the runtime registry")
    parser.add_argument("--monitor", type=float, default=None, metavar="SEC",
                        help="sample CPU/network utilization every SEC "
                             "simulated seconds")
    parser.add_argument("--sweep", default=None, metavar="GB,GB,...",
                        help="sweep mode: comma-separated shuffle sizes in "
                             "GB; prints a size x network table instead of "
                             "a single-run report")
    parser.add_argument("--networks", default=None, metavar="NET,NET,...",
                        help="networks for --sweep (default: the single "
                             "--network)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="run sweep points on N worker processes "
                             "(results are identical to -j 1)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="also write the sweep as CSV to PATH")
    parser.add_argument("--timeline", action="store_true",
                        help="print an ASCII Gantt chart of all tasks")
    parser.add_argument("--history-json", default=None, metavar="PATH",
                        help="write the job history record as JSON to PATH")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record the structured phase trace and write "
                             "it as Chrome trace_event JSON to PATH "
                             "(viewable in Perfetto)")
    parser.add_argument("--phase-report", action="store_true",
                        help="print the per-node phase breakdown table "
                             "(map / spill-merge / shuffle / merge / reduce)")
    faults = parser.add_argument_group(
        "fault injection",
        "deterministic, seeded fault injection (see docs/MODEL.md); "
        "flags layer on top of --fault-plan",
    )
    faults.add_argument("--fault-plan", default=None, metavar="PLAN.json",
                        help="inject faults from a JSON FaultPlan file")
    faults.add_argument("--task-failure-prob", type=float, default=None,
                        metavar="P",
                        help="per-attempt task failure probability "
                             "(seeded coin, 0 <= P < 1)")
    faults.add_argument("--kill-node", action="append", default=None,
                        metavar="NODE@T",
                        help="crash NODE at simulated time T seconds "
                             "(repeatable, e.g. slave1@30)")
    faults.add_argument("--slow-node", action="append", default=None,
                        metavar="NODE:FACTOR",
                        help="slow NODE's CPU and NIC by FACTOR "
                             "(repeatable, e.g. slave0:2)")
    return parser


def _build_fault_plan(args):
    """Assemble the run's FaultPlan from --fault-plan plus flag-level
    faults; returns ``None`` when nothing is injected."""
    from repro.faults import FaultPlan, NodeCrash, SlowNode

    plan = (FaultPlan.load(args.fault_plan) if args.fault_plan
            else FaultPlan())
    crashes = []
    for spec in args.kill_node or ():
        node, sep, at = spec.partition("@")
        if not node or not sep:
            raise ValueError(
                f"--kill-node expects NODE@TIME (e.g. slave1@30), got {spec!r}"
            )
        try:
            when = float(at)
        except ValueError:
            raise ValueError(
                f"--kill-node time must be a number, got {at!r}"
            ) from None
        crashes.append(NodeCrash(node, at_time=when))
    slows = []
    for spec in args.slow_node or ():
        node, sep, factor = spec.partition(":")
        if not node or not sep:
            raise ValueError(
                f"--slow-node expects NODE:FACTOR (e.g. slave0:2), got {spec!r}"
            )
        try:
            slowdown = float(factor)
        except ValueError:
            raise ValueError(
                f"--slow-node factor must be a number, got {factor!r}"
            ) from None
        slows.append(SlowNode(node, cpu_factor=slowdown,
                              nic_factor=slowdown))
    plan = plan.with_overrides(
        task_failure_probability=args.task_failure_prob,
        node_crashes=crashes,
        slow_nodes=slows,
    )
    return None if plan.is_noop() else plan


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    factory = cluster_a if args.cluster == "a" else cluster_b
    cluster = factory(args.slaves) if args.slaves else factory()
    jobconf = JobConf(version=args.framework)
    try:
        fault_plan = _build_fault_plan(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    suite = MicroBenchmarkSuite(cluster=cluster, jobconf=jobconf,
                                fault_plan=fault_plan)

    pattern = args.benchmark.split("-")[1].lower()
    common = dict(
        pattern=pattern,
        key_size=args.key_size,
        value_size=args.value_size,
        num_maps=args.maps,
        num_reduces=args.reduces,
        data_type=args.data_type,
        seed=args.seed,
    )
    tracer = None
    if args.trace is not None:
        from repro.sim.trace import Tracer

        tracer = Tracer()
    try:
        if args.workload is not None:
            from repro.core.workloads import get_workload

            profile = get_workload(args.workload)
            shuffle_gb = args.shuffle_gb if args.shuffle_gb is not None else 4.0
            config = profile.configure(
                shuffle_gb=shuffle_gb,
                num_maps=args.maps,
                num_reduces=args.reduces,
                network=args.network,
                seed=args.seed,
            )
        elif args.sweep is not None:
            return _run_sweep(suite, args, common)
        elif args.num_pairs is not None:
            config = BenchmarkConfig(num_pairs=args.num_pairs,
                                     network=args.network, **common)
        else:
            shuffle_gb = args.shuffle_gb if args.shuffle_gb is not None else 4.0
            config = BenchmarkConfig.from_shuffle_size(
                shuffle_gb * 1e9, network=args.network, **common)
        result = suite.run_config(config, monitor_interval=args.monitor,
                                  tracer=tracer)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(result))
    if args.phase_report:
        print()
        print(render_phase_table(result))
    if args.timeline:
        from repro.hadoop.history import render_timeline

        print("\nTask timeline:")
        print(render_timeline(result))
    if args.history_json:
        from repro.hadoop.history import history_json

        with open(args.history_json, "w") as handle:
            handle.write(history_json(result))
        print(f"\njob history written to {args.history_json}")
    if args.trace is not None:
        from repro.analysis.export import write_chrome_trace

        write_chrome_trace(args.trace, result.trace)
        print(f"\nchrome trace written to {args.trace}")
    return 0


def _run_sweep(suite: MicroBenchmarkSuite, args, common: dict) -> int:
    from repro.analysis.export import sweep_to_csv, write_csv

    sizes = [float(s) for s in args.sweep.split(",") if s.strip()]
    if not sizes:
        print("error: --sweep needs at least one size", file=sys.stderr)
        return 2
    networks = (
        [n.strip() for n in args.networks.split(",") if n.strip()]
        if args.networks
        else [args.network]
    )
    # The benchmark name determines the pattern; sweep() applies it.
    sweep_kwargs = {k: v for k, v in common.items() if k != "pattern"}
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    sweep = suite.sweep(args.benchmark, sizes, networks, jobs=args.jobs,
                        **sweep_kwargs)
    print(sweep.to_table(
        title=f"{args.benchmark} job execution time (s) [{args.framework}]"))
    if args.csv:
        write_csv(args.csv, sweep_to_csv(sweep))
        print(f"\ncsv written to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
