"""Stand-alone input/output formats (Sect. 4.1).

The defining trick of the suite: the job runs *without HDFS*.

* :class:`NullInputFormat` fabricates one dummy split per requested map
  task, each holding a single record; the map function ignores it and
  generates the configured number of key/value pairs in memory.
* :class:`NullOutputFormat` gives reduce tasks a record writer that
  counts and discards (``/dev/null``), so no file system participates
  in the measured path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.datatypes.writable import NullWritable, Writable


@dataclass(frozen=True)
class DummySplit:
    """An input split that carries no data — only its map task's index."""

    map_id: int
    #: Dummy length so schedulers that sort splits by size stay happy.
    length: int = 0

    def __post_init__(self) -> None:
        if self.map_id < 0:
            raise ValueError(f"map_id must be >= 0, got {self.map_id}")


class DummyRecordReader:
    """Yields exactly one (NullWritable, NullWritable) record."""

    def __init__(self, split: DummySplit):
        self.split = split
        self._consumed = False

    def __iter__(self) -> Iterator[Tuple[Writable, Writable]]:
        return self

    def __next__(self) -> Tuple[Writable, Writable]:
        if self._consumed:
            raise StopIteration
        self._consumed = True
        return NullWritable(), NullWritable()

    @property
    def progress(self) -> float:
        return 1.0 if self._consumed else 0.0


class NullInputFormat:
    """Input format producing dummy splits, one per map task."""

    @staticmethod
    def get_splits(num_maps: int) -> List[DummySplit]:
        """One empty split per requested map task."""
        if num_maps < 1:
            raise ValueError(f"num_maps must be >= 1, got {num_maps}")
        return [DummySplit(map_id=i) for i in range(num_maps)]

    @staticmethod
    def create_record_reader(split: DummySplit) -> DummyRecordReader:
        return DummyRecordReader(split)


class NullRecordWriter:
    """Counts records and bytes, then forgets them (``/dev/null``)."""

    def __init__(self) -> None:
        self.records_written = 0
        self.bytes_discarded = 0
        self._closed = False

    def write(self, key: Writable, value: Writable) -> None:
        if self._closed:
            raise ValueError("write() on a closed NullRecordWriter")
        self.records_written += 1
        self.bytes_discarded += key.serialized_size() + value.serialized_size()

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class NullOutputFormat:
    """Output format whose writers discard everything."""

    @staticmethod
    def create_record_writer() -> NullRecordWriter:
        return NullRecordWriter()
