"""Custom partitioners implementing the three distribution patterns.

Sect. 4.2 defines the suite's three micro-benchmarks by their
partitioner:

* **MR-AVG** — :class:`AveragePartitioner`: strict round-robin, every
  reducer receives the same number of pairs (±1).
* **MR-RAND** — :class:`RandomPartitioner`: reducer drawn uniformly per
  pair from a seeded PRNG ("With this limited range, the micro-benchmark
  more or less generates the same pattern of reducers" — we fix the seed
  so every run maps identically).
* **MR-SKEW** — :class:`SkewedPartitioner`: 50 % of all pairs to reducer
  0, 25 % of the remainder to reducer 1, 12.5 % of the remaining to
  reducer 2, and the rest uniformly at random. The pattern is fixed
  across runs, guaranteeing a fair comparison on homogeneous systems.

Partitioners are *per-map-task* objects (create one per task, or call
:meth:`Partitioner.reset` between tasks) because MR-AVG's round-robin
and the PRNG-based patterns carry per-task state.
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence

import numpy as np

from repro.datatypes.writable import Writable

#: ``random.Random.random()`` combines a 27-bit and a 26-bit word slice
#: into a 53-bit double with this scale factor.
_RANDOM_SCALE = 1.0 / 9007199254740992.0  # 2**-53


def _mt_from(rng: random.Random) -> np.random.MT19937:
    """A numpy MT19937 positioned at ``rng``'s exact generator state.

    CPython's ``random.Random`` and numpy's ``MT19937`` share the same
    core generator, so transplanting the 624-word state vector makes
    ``mt.random_raw(n)`` reproduce the next ``n`` 32-bit words ``rng``
    would draw — the basis of the vectorized ``exact_counts`` paths.
    """
    _version, internal, _gauss = rng.getstate()
    mt = np.random.MT19937()
    mt.state = {
        "bit_generator": "MT19937",
        "state": {"key": np.array(internal[:-1], dtype=np.uint64),
                  "pos": internal[-1]},
    }
    return mt


def _advance_rng(rng: random.Random, nwords: int) -> None:
    """Advance ``rng`` by exactly ``nwords`` 32-bit draws (in C speed)."""
    version, internal, gauss = rng.getstate()
    mt = _mt_from(rng)
    if nwords:
        mt.random_raw(nwords)
    state = mt.state["state"]
    rng.setstate((version,
                  tuple(int(x) for x in state["key"]) + (int(state["pos"]),),
                  gauss))


class Partitioner(abc.ABC):
    """Assigns each intermediate pair to a reduce partition."""

    #: True when :meth:`get_partition` inspects the key/value content
    #: (only the hash baseline does); the pattern partitioners are
    #: index/PRNG driven, which enables :meth:`exact_counts`.
    uses_keys = False

    def __init__(self, num_reduces: int):
        if num_reduces < 1:
            raise ValueError(f"num_reduces must be >= 1, got {num_reduces}")
        self.num_reduces = num_reduces

    @abc.abstractmethod
    def get_partition(self, key: Writable, value: Writable) -> int:
        """Partition index in ``[0, num_reduces)`` for this pair."""

    def reset(self) -> None:
        """Restore per-task state (call between map tasks)."""

    def exact_counts(self, n_pairs: int) -> np.ndarray:
        """Per-reducer counts of the next ``n_pairs`` partition calls.

        Exactly equivalent to tallying ``get_partition`` ``n_pairs``
        times — same counts, same PRNG state afterwards — but without
        materializing keys (valid because ``uses_keys`` is False; the
        subclasses override this with vectorized implementations that
        replay the identical draw sequence, property-tested in
        ``tests/core/test_exact_counts.py``).
        """
        get_partition = self.get_partition
        counts = [0] * self.num_reduces
        for _ in range(n_pairs):
            counts[get_partition(None, None)] += 1
        return np.asarray(counts, dtype=np.int64)

    def expected_distribution(self) -> List[float]:
        """Long-run fraction of pairs per reducer (sums to 1).

        Used by the simulator to build shuffle matrices without looping
        over billions of records; cross-validated against real runs of
        :meth:`get_partition` in the test suite.
        """
        n = self.num_reduces
        return [1.0 / n] * n


class AveragePartitioner(Partitioner):
    """MR-AVG: round-robin, perfectly even (max-min spread <= 1 pair)."""

    def __init__(self, num_reduces: int):
        super().__init__(num_reduces)
        self._next = 0

    def get_partition(self, key: Writable, value: Writable) -> int:
        partition = self._next
        self._next = (self._next + 1) % self.num_reduces
        return partition

    def reset(self) -> None:
        self._next = 0

    def exact_counts(self, n_pairs: int) -> np.ndarray:
        n = self.num_reduces
        base, extra = divmod(n_pairs, n)
        counts = np.full(n, base, dtype=np.int64)
        # The round-robin pointer continues from its current position.
        for offset in range(extra):
            counts[(self._next + offset) % n] += 1
        self._next = (self._next + n_pairs) % n
        return counts


class RandomPartitioner(Partitioner):
    """MR-RAND: uniform pseudo-random reducer per pair, seeded."""

    def __init__(self, num_reduces: int, seed: int = 20140901):
        super().__init__(num_reduces)
        self.seed = seed
        self._rng = random.Random(seed)

    def get_partition(self, key: Writable, value: Writable) -> int:
        return self._rng.randrange(self.num_reduces)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def exact_counts(self, n_pairs: int) -> np.ndarray:
        """Vectorized replay of ``randrange(n)`` rejection sampling.

        ``randrange(n)`` is ``getrandbits(n.bit_length())`` redrawn
        while the value is >= n; each ``getrandbits(k)`` consumes one
        raw word, shifted down to its top k bits. The accepted values
        of the raw stream, in order, ARE the randrange outputs — so
        count them with numpy and advance the Python PRNG by exactly
        the number of words consumed.
        """
        n = self.num_reduces
        counts = np.zeros(n, dtype=np.int64)
        if n_pairs <= 0:
            return counts
        k = n.bit_length()
        shift = 32 - k
        mt = _mt_from(self._rng)
        consumed = 0
        needed = n_pairs
        while needed:
            # Acceptance rate is n / 2**k; draw with a little headroom.
            est = int(needed * (1 << k) / n * 1.05) + 64
            draws = (mt.random_raw(est) >> shift).astype(np.int64)
            accepted = draws < n
            n_accepted = int(accepted.sum())
            if n_accepted >= needed:
                cut = int(np.nonzero(accepted)[0][needed - 1]) + 1
                counts += np.bincount(draws[:cut][accepted[:cut]],
                                      minlength=n)
                consumed += cut
                break
            counts += np.bincount(draws[accepted], minlength=n)
            consumed += est
            needed -= n_accepted
        _advance_rng(self._rng, consumed)
        return counts


class SkewedPartitioner(Partitioner):
    """MR-SKEW: geometric head (50 %, 12.5 %, ~4.7 %) + uniform tail.

    Thresholds over a uniform draw ``u``:

    * ``u < 0.5``                    -> reducer 0 (50 % of all pairs)
    * ``0.5 <= u < 0.625``           -> reducer 1 (25 % of the remainder)
    * ``0.625 <= u < 0.671875``      -> reducer 2 (12.5 % of the remaining)
    * otherwise                      -> uniform over all reducers

    With fewer than 3 reducers the head truncates accordingly.
    """

    #: Cumulative thresholds for reducers 0..2.
    _HEAD = (0.5, 0.625, 0.671875)

    def __init__(self, num_reduces: int, seed: int = 20140901):
        super().__init__(num_reduces)
        self.seed = seed
        self._rng = random.Random(seed)

    def get_partition(self, key: Writable, value: Writable) -> int:
        u = self._rng.random()
        head = min(len(self._HEAD), self.num_reduces - 1)
        for reducer in range(head):
            if u < self._HEAD[reducer]:
                return reducer
        return self._rng.randrange(self.num_reduces)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def exact_counts(self, n_pairs: int) -> np.ndarray:
        """Replay of the head-or-tail draw over the raw word stream.

        The per-pair word consumption is data-dependent (``random()``
        always eats two words; a tail pair then runs ``randrange``'s
        rejection loop), so this walks pairs in Python — but over a
        pre-drawn word buffer with plain arithmetic, which is several
        times cheaper than the method-dispatch loop it replaces.
        """
        n = self.num_reduces
        if n_pairs <= 0:
            return np.zeros(n, dtype=np.int64)
        head = min(len(self._HEAD), n - 1)
        thresholds = self._HEAD[:head]
        k = n.bit_length()
        shift = 32 - k
        mt = _mt_from(self._rng)
        counts = [0] * n
        scale = _RANDOM_SCALE
        tail_prob = 1.0 - (thresholds[-1] if head else 0.0)
        words_per_pair = 2.0 + tail_prob * (1 << k) / n + 0.05
        buf = mt.random_raw(int(n_pairs * words_per_pair) + 256).tolist()
        retired = 0  # words in fully-consumed, discarded buffers
        i = 0
        size = len(buf)
        for _ in range(n_pairs):
            if i + 2 > size:
                retired += i
                buf = buf[i:] + mt.random_raw(4096).tolist()
                i, size = 0, len(buf)
            u = ((buf[i] >> 5) * 67108864 + (buf[i + 1] >> 6)) * scale
            i += 2
            for reducer, threshold in enumerate(thresholds):
                if u < threshold:
                    counts[reducer] += 1
                    break
            else:
                while True:
                    if i == size:
                        retired += i
                        buf = mt.random_raw(4096).tolist()
                        i, size = 0, len(buf)
                    r = buf[i] >> shift
                    i += 1
                    if r < n:
                        counts[r] += 1
                        break
        _advance_rng(self._rng, retired + i)
        return np.asarray(counts, dtype=np.int64)

    def expected_distribution(self) -> List[float]:
        n = self.num_reduces
        head = min(len(self._HEAD), n - 1)
        probs = [0.0] * n
        prev = 0.0
        for reducer in range(head):
            probs[reducer] = self._HEAD[reducer] - prev
            prev = self._HEAD[reducer]
        tail = 1.0 - prev
        for reducer in range(n):
            probs[reducer] += tail / n
        return probs


class ZipfPartitioner(Partitioner):
    """Extension pattern: Zipf-distributed reducer loads.

    The paper's future work calls for features that let "users gain a
    more concrete understanding of real-world workloads"; real skew
    (word counts, social graphs, URL hits) is Zipfian rather than the
    fixed geometric head of MR-SKEW. Reducer ``r`` receives pairs with
    probability proportional to ``1 / (r + 1) ** exponent``.
    """

    def __init__(self, num_reduces: int, seed: int = 20140901,
                 exponent: float = 1.0):
        super().__init__(num_reduces)
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent}")
        self.seed = seed
        self.exponent = exponent
        self._rng = random.Random(seed)
        weights = [1.0 / (r + 1) ** exponent for r in range(num_reduces)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float shortfall

    def get_partition(self, key: Writable, value: Writable) -> int:
        u = self._rng.random()
        # Binary search the CDF.
        lo, hi = 0, self.num_reduces - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if u <= self._cdf[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def exact_counts(self, n_pairs: int) -> np.ndarray:
        """Vectorized CDF inversion: every pair consumes exactly two
        raw words (one ``random()`` call), so the whole draw sequence
        reconstructs in one shot."""
        n = self.num_reduces
        if n_pairs <= 0:
            return np.zeros(n, dtype=np.int64)
        mt = _mt_from(self._rng)
        raw = mt.random_raw(2 * n_pairs)
        u = ((raw[0::2] >> np.uint64(5)).astype(np.float64) * 67108864.0
             + (raw[1::2] >> np.uint64(6)).astype(np.float64)) * _RANDOM_SCALE
        # get_partition finds the smallest index with u <= cdf[i]; for
        # the last bucket the loop bottoms out at n-1 without a compare,
        # which searchsorted(side="left") reproduces (cdf[-1] is 1.0).
        draws = np.searchsorted(np.asarray(self._cdf), u, side="left")
        counts = np.bincount(draws, minlength=n).astype(np.int64)
        _advance_rng(self._rng, 2 * n_pairs)
        return counts

    def expected_distribution(self) -> List[float]:
        weights = [1.0 / (r + 1) ** self.exponent
                   for r in range(self.num_reduces)]
        total = sum(weights)
        return [w / total for w in weights]


class SplitSkewedPartitioner(SkewedPartitioner):
    """Extension: MR-SKEW with key-splitting mitigation.

    The paper asks whether "it is worthwhile to find alternative
    techniques that can mitigate load imbalances". This partitioner
    applies the classic mitigation — split the hot key's partition
    across ``split`` reducers (valid whenever the reduce function is
    associative, as the benchmark's discard-reduce trivially is) —
    to the exact MR-SKEW draw, so the two are directly comparable.
    """

    def __init__(self, num_reduces: int, seed: int = 20140901,
                 split: int = 4):
        super().__init__(num_reduces, seed=seed)
        if split < 1:
            raise ValueError(f"split must be >= 1, got {split}")
        self.split = min(split, num_reduces)
        self._spread = 0

    def get_partition(self, key: Writable, value: Writable) -> int:
        partition = super().get_partition(key, value)
        if partition == 0:
            # Fan the hot partition round-robin over the `split`
            # least-loaded (tail) reducers.
            partition = self.num_reduces - self.split + self._spread
            self._spread = (self._spread + 1) % self.split
        return partition

    def reset(self) -> None:
        super().reset()
        self._spread = 0

    def exact_counts(self, n_pairs: int) -> np.ndarray:
        counts = SkewedPartitioner.exact_counts(self, n_pairs)
        hot = int(counts[0])
        counts[0] = 0
        # Round-robin the hot pairs over the `split` tail reducers,
        # continuing from the current spread pointer.
        base, extra = divmod(hot, self.split)
        start = self.num_reduces - self.split
        add = np.full(self.split, base, dtype=np.int64)
        for offset in range(extra):
            add[(self._spread + offset) % self.split] += 1
        counts[start:] += add
        self._spread = (self._spread + hot) % self.split
        return counts

    def expected_distribution(self) -> List[float]:
        base = super().expected_distribution()
        probs = list(base)
        hot = probs[0]
        probs[0] = 0.0
        for r in range(self.num_reduces - self.split, self.num_reduces):
            probs[r] += hot / self.split
        return probs


class HashPartitioner(Partitioner):
    """Hadoop's default partitioner; the suite's sanity baseline.

    With the generator's unique-keys-per-reducer trick, hashing gives a
    near-even distribution but no guarantees; the paper's MR-AVG exists
    precisely to make evenness exact.
    """

    uses_keys = True

    def get_partition(self, key: Writable, value: Writable) -> int:
        # Hadoop: (key.hashCode() & Integer.MAX_VALUE) % numReduceTasks.
        # Writable.stable_hash is seed-independent; the builtin hash()
        # fallback (for plain-Python keys) varies with PYTHONHASHSEED.
        stable = getattr(key, "stable_hash", None)
        h = stable() if stable is not None else hash(key)
        return (h & 0x7FFFFFFF) % self.num_reduces


#: Partitioner classes keyed by benchmark pattern name ("zipf" is this
#: reproduction's real-world-skew extension).
PARTITIONER_BY_PATTERN = {
    "avg": AveragePartitioner,
    "rand": RandomPartitioner,
    "skew": SkewedPartitioner,
    "zipf": ZipfPartitioner,
    "skew-split": SplitSkewedPartitioner,
}


def make_partitioner(pattern: str, num_reduces: int, seed: int = 20140901) -> Partitioner:
    """Instantiate the partitioner for a distribution pattern."""
    try:
        cls = PARTITIONER_BY_PATTERN[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; known: {sorted(PARTITIONER_BY_PATTERN)}"
        ) from None
    if cls is AveragePartitioner:
        return cls(num_reduces)
    return cls(num_reduces, seed=seed)


def distribution_stats(counts: Sequence[int]) -> dict:
    """Imbalance statistics of a per-reducer record count vector."""
    total = sum(counts)
    if total == 0:
        return {"total": 0, "max": 0, "min": 0, "imbalance": 0.0, "top_share": 0.0}
    mean = total / len(counts)
    return {
        "total": total,
        "max": max(counts),
        "min": min(counts),
        "imbalance": max(counts) / mean,
        "top_share": max(counts) / total,
    }
