"""Custom partitioners implementing the three distribution patterns.

Sect. 4.2 defines the suite's three micro-benchmarks by their
partitioner:

* **MR-AVG** — :class:`AveragePartitioner`: strict round-robin, every
  reducer receives the same number of pairs (±1).
* **MR-RAND** — :class:`RandomPartitioner`: reducer drawn uniformly per
  pair from a seeded PRNG ("With this limited range, the micro-benchmark
  more or less generates the same pattern of reducers" — we fix the seed
  so every run maps identically).
* **MR-SKEW** — :class:`SkewedPartitioner`: 50 % of all pairs to reducer
  0, 25 % of the remainder to reducer 1, 12.5 % of the remaining to
  reducer 2, and the rest uniformly at random. The pattern is fixed
  across runs, guaranteeing a fair comparison on homogeneous systems.

Partitioners are *per-map-task* objects (create one per task, or call
:meth:`Partitioner.reset` between tasks) because MR-AVG's round-robin
and the PRNG-based patterns carry per-task state.
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence

from repro.datatypes.writable import Writable


class Partitioner(abc.ABC):
    """Assigns each intermediate pair to a reduce partition."""

    def __init__(self, num_reduces: int):
        if num_reduces < 1:
            raise ValueError(f"num_reduces must be >= 1, got {num_reduces}")
        self.num_reduces = num_reduces

    @abc.abstractmethod
    def get_partition(self, key: Writable, value: Writable) -> int:
        """Partition index in ``[0, num_reduces)`` for this pair."""

    def reset(self) -> None:
        """Restore per-task state (call between map tasks)."""

    def expected_distribution(self) -> List[float]:
        """Long-run fraction of pairs per reducer (sums to 1).

        Used by the simulator to build shuffle matrices without looping
        over billions of records; cross-validated against real runs of
        :meth:`get_partition` in the test suite.
        """
        n = self.num_reduces
        return [1.0 / n] * n


class AveragePartitioner(Partitioner):
    """MR-AVG: round-robin, perfectly even (max-min spread <= 1 pair)."""

    def __init__(self, num_reduces: int):
        super().__init__(num_reduces)
        self._next = 0

    def get_partition(self, key: Writable, value: Writable) -> int:
        partition = self._next
        self._next = (self._next + 1) % self.num_reduces
        return partition

    def reset(self) -> None:
        self._next = 0


class RandomPartitioner(Partitioner):
    """MR-RAND: uniform pseudo-random reducer per pair, seeded."""

    def __init__(self, num_reduces: int, seed: int = 20140901):
        super().__init__(num_reduces)
        self.seed = seed
        self._rng = random.Random(seed)

    def get_partition(self, key: Writable, value: Writable) -> int:
        return self._rng.randrange(self.num_reduces)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class SkewedPartitioner(Partitioner):
    """MR-SKEW: geometric head (50 %, 12.5 %, ~4.7 %) + uniform tail.

    Thresholds over a uniform draw ``u``:

    * ``u < 0.5``                    -> reducer 0 (50 % of all pairs)
    * ``0.5 <= u < 0.625``           -> reducer 1 (25 % of the remainder)
    * ``0.625 <= u < 0.671875``      -> reducer 2 (12.5 % of the remaining)
    * otherwise                      -> uniform over all reducers

    With fewer than 3 reducers the head truncates accordingly.
    """

    #: Cumulative thresholds for reducers 0..2.
    _HEAD = (0.5, 0.625, 0.671875)

    def __init__(self, num_reduces: int, seed: int = 20140901):
        super().__init__(num_reduces)
        self.seed = seed
        self._rng = random.Random(seed)

    def get_partition(self, key: Writable, value: Writable) -> int:
        u = self._rng.random()
        head = min(len(self._HEAD), self.num_reduces - 1)
        for reducer in range(head):
            if u < self._HEAD[reducer]:
                return reducer
        return self._rng.randrange(self.num_reduces)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def expected_distribution(self) -> List[float]:
        n = self.num_reduces
        head = min(len(self._HEAD), n - 1)
        probs = [0.0] * n
        prev = 0.0
        for reducer in range(head):
            probs[reducer] = self._HEAD[reducer] - prev
            prev = self._HEAD[reducer]
        tail = 1.0 - prev
        for reducer in range(n):
            probs[reducer] += tail / n
        return probs


class ZipfPartitioner(Partitioner):
    """Extension pattern: Zipf-distributed reducer loads.

    The paper's future work calls for features that let "users gain a
    more concrete understanding of real-world workloads"; real skew
    (word counts, social graphs, URL hits) is Zipfian rather than the
    fixed geometric head of MR-SKEW. Reducer ``r`` receives pairs with
    probability proportional to ``1 / (r + 1) ** exponent``.
    """

    def __init__(self, num_reduces: int, seed: int = 20140901,
                 exponent: float = 1.0):
        super().__init__(num_reduces)
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent}")
        self.seed = seed
        self.exponent = exponent
        self._rng = random.Random(seed)
        weights = [1.0 / (r + 1) ** exponent for r in range(num_reduces)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float shortfall

    def get_partition(self, key: Writable, value: Writable) -> int:
        u = self._rng.random()
        # Binary search the CDF.
        lo, hi = 0, self.num_reduces - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if u <= self._cdf[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def expected_distribution(self) -> List[float]:
        weights = [1.0 / (r + 1) ** self.exponent
                   for r in range(self.num_reduces)]
        total = sum(weights)
        return [w / total for w in weights]


class SplitSkewedPartitioner(SkewedPartitioner):
    """Extension: MR-SKEW with key-splitting mitigation.

    The paper asks whether "it is worthwhile to find alternative
    techniques that can mitigate load imbalances". This partitioner
    applies the classic mitigation — split the hot key's partition
    across ``split`` reducers (valid whenever the reduce function is
    associative, as the benchmark's discard-reduce trivially is) —
    to the exact MR-SKEW draw, so the two are directly comparable.
    """

    def __init__(self, num_reduces: int, seed: int = 20140901,
                 split: int = 4):
        super().__init__(num_reduces, seed=seed)
        if split < 1:
            raise ValueError(f"split must be >= 1, got {split}")
        self.split = min(split, num_reduces)
        self._spread = 0

    def get_partition(self, key: Writable, value: Writable) -> int:
        partition = super().get_partition(key, value)
        if partition == 0:
            # Fan the hot partition round-robin over the `split`
            # least-loaded (tail) reducers.
            partition = self.num_reduces - self.split + self._spread
            self._spread = (self._spread + 1) % self.split
        return partition

    def reset(self) -> None:
        super().reset()
        self._spread = 0

    def expected_distribution(self) -> List[float]:
        base = super().expected_distribution()
        probs = list(base)
        hot = probs[0]
        probs[0] = 0.0
        for r in range(self.num_reduces - self.split, self.num_reduces):
            probs[r] += hot / self.split
        return probs


class HashPartitioner(Partitioner):
    """Hadoop's default partitioner; the suite's sanity baseline.

    With the generator's unique-keys-per-reducer trick, hashing gives a
    near-even distribution but no guarantees; the paper's MR-AVG exists
    precisely to make evenness exact.
    """

    def get_partition(self, key: Writable, value: Writable) -> int:
        return hash(key) % self.num_reduces


#: Partitioner classes keyed by benchmark pattern name ("zipf" is this
#: reproduction's real-world-skew extension).
PARTITIONER_BY_PATTERN = {
    "avg": AveragePartitioner,
    "rand": RandomPartitioner,
    "skew": SkewedPartitioner,
    "zipf": ZipfPartitioner,
    "skew-split": SplitSkewedPartitioner,
}


def make_partitioner(pattern: str, num_reduces: int, seed: int = 20140901) -> Partitioner:
    """Instantiate the partitioner for a distribution pattern."""
    try:
        cls = PARTITIONER_BY_PATTERN[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; known: {sorted(PARTITIONER_BY_PATTERN)}"
        ) from None
    if cls is AveragePartitioner:
        return cls(num_reduces)
    return cls(num_reduces, seed=seed)


def distribution_stats(counts: Sequence[int]) -> dict:
    """Imbalance statistics of a per-reducer record count vector."""
    total = sum(counts)
    if total == 0:
        return {"total": 0, "max": 0, "min": 0, "imbalance": 0.0, "top_share": 0.0}
    mean = total / len(counts)
    return {
        "total": total,
        "max": max(counts),
        "min": min(counts),
        "imbalance": max(counts) / mean,
        "top_share": max(counts) / total,
    }
