"""Real-world workload profiles (extension).

The paper closes by planning features "so that users can gain a more
concrete understanding of real-world workloads". This module maps
well-known MapReduce applications onto micro-benchmark configurations:
each profile pins the key/value sizes, data type, and intermediate
distribution pattern that the application's shuffle actually exhibits,
so a cluster can be evaluated against "a wordcount-shaped shuffle"
without running the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.config import BenchmarkConfig


@dataclass(frozen=True)
class WorkloadProfile:
    """The shuffle signature of one application class."""

    name: str
    description: str
    key_size: int
    value_size: int
    pattern: str
    data_type: str = "BytesWritable"
    key_type: str = None  # type: ignore[assignment]
    value_type: str = None  # type: ignore[assignment]

    def configure(
        self,
        shuffle_gb: float,
        num_maps: int,
        num_reduces: int,
        network: str = "1GigE",
        seed: int = 20140901,
    ) -> BenchmarkConfig:
        """A benchmark config with this workload's shuffle signature."""
        return BenchmarkConfig.from_shuffle_size(
            shuffle_gb * 1e9,
            pattern=self.pattern,
            key_size=self.key_size,
            value_size=self.value_size,
            data_type=self.data_type,
            key_type=self.key_type,
            value_type=self.value_type,
            num_maps=num_maps,
            num_reduces=num_reduces,
            network=network,
            seed=seed,
        )


#: Word count: tiny textual keys, one-byte counts, Zipfian word
#: frequencies — the canonical skewed shuffle.
WORDCOUNT = WorkloadProfile(
    name="wordcount",
    description="word -> count: tiny Text pairs, Zipf-skewed keys",
    key_size=9,
    value_size=1,
    pattern="zipf",
    data_type="Text",
)

#: TeraSort: fixed 10-byte keys + 90-byte rows, uniformly distributed
#: by the sampled range partitioner.
TERASORT = WorkloadProfile(
    name="terasort",
    description="10B key + 90B row, uniform range partitions",
    key_size=10,
    value_size=90,
    pattern="avg",
    data_type="BytesWritable",
)

#: Inverted index: term -> posting-list fragments; textual terms,
#: medium binary postings, Zipfian term frequencies.
INVERTED_INDEX = WorkloadProfile(
    name="inverted-index",
    description="term -> postings: Text keys, binary values, Zipf terms",
    key_size=12,
    value_size=240,
    pattern="zipf",
    data_type="BytesWritable",
    key_type="Text",
    value_type="BytesWritable",
)

#: Log/session aggregation: hashed session ids spread evenly; fat
#: serialized session blobs.
SESSION_AGGREGATION = WorkloadProfile(
    name="session-aggregation",
    description="session id -> event blob: even hash spread, 1KB values",
    key_size=16,
    value_size=1000,
    pattern="rand",
    data_type="BytesWritable",
)

#: Join build side: medium keys and rows, pseudo-random key spread.
HASH_JOIN = WorkloadProfile(
    name="hash-join",
    description="join key -> row: 8B keys, 200B rows, hash spread",
    key_size=8,
    value_size=200,
    pattern="rand",
    data_type="BytesWritable",
)

WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (WORDCOUNT, TERASORT, INVERTED_INDEX,
                    SESSION_AGGREGATION, HASH_JOIN)
}


def get_workload(name: str) -> WorkloadProfile:
    """Look up a workload profile by name (case-insensitive)."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
