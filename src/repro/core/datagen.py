"""Deterministic in-memory key/value pair generation (Sect. 4.2).

Each map task generates its share of the configured pairs in memory.
"To avoid any additional overhead, we restrict the number of unique
pairs generated to the number of reducers specified" — so keys cycle
through ``num_reduces`` distinct byte patterns, and values are filler
of the configured size.

Generation is deterministic in ``(seed, map_id, index)``: two runs of
the same config produce identical streams, which the paper needs for a
fair comparison across networks.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Tuple, Type

from repro.core.config import BenchmarkConfig
from repro.datatypes import BytesWritable, Text
from repro.datatypes.writable import Writable


def _deterministic_bytes(tag: bytes, size: int) -> bytes:
    """``size`` pseudo-random but reproducible bytes derived from ``tag``."""
    if size == 0:
        return b""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out.extend(hashlib.sha256(tag + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(out[:size])


def _ascii_armor(raw: bytes) -> bytes:
    """Map raw bytes into printable ASCII (for valid UTF-8 Text payloads).

    Keeps the payload length identical to the requested size.
    """
    alphabet = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"
    return bytes(alphabet[b & 0x3F] for b in raw)


class KeyValueGenerator:
    """Generates one map task's intermediate key/value pairs.

    Parameters come from a :class:`BenchmarkConfig`; the generator
    pre-builds the ``num_reduces`` unique key payloads and one value
    payload, then streams ``(key, value)`` Writables.
    """

    def __init__(self, config: BenchmarkConfig, map_id: int):
        if not 0 <= map_id < config.num_maps:
            raise IndexError(
                f"map_id {map_id} out of range [0, {config.num_maps})"
            )
        self.config = config
        self.map_id = map_id
        self.num_pairs = config.pairs_for_map(map_id)
        self._key_writable: Type[Writable] = config.key_writable
        self._value_writable: Type[Writable] = config.value_writable
        seed_tag = f"{config.seed}".encode()
        self._unique_keys = [
            self._payload(seed_tag + b":key:" + str(k).encode(),
                          config.key_size, self._key_writable)
            for k in range(config.num_reduces)
        ]
        self._value_payload = self._payload(
            seed_tag + b":value:" + str(map_id).encode(), config.value_size,
            self._value_writable,
        )

    @staticmethod
    def _payload(tag: bytes, size: int, writable: Type[Writable]) -> bytes:
        raw = _deterministic_bytes(tag, size)
        if writable is Text:
            return _ascii_armor(raw)
        return raw

    @staticmethod
    def _wrap(payload: bytes, writable: Type[Writable]) -> Writable:
        if writable is Text:
            return Text(payload)
        return BytesWritable(payload)

    def key_payload(self, index: int) -> bytes:
        """The key payload of record ``index`` (cycles unique keys)."""
        return self._unique_keys[index % len(self._unique_keys)]

    def __iter__(self) -> Iterator[Tuple[Writable, Writable]]:
        value = self._wrap(self._value_payload, self._value_writable)
        keys = [self._wrap(p, self._key_writable) for p in self._unique_keys]
        n_unique = len(keys)
        for i in range(self.num_pairs):
            yield keys[i % n_unique], value

    def __len__(self) -> int:
        return self.num_pairs
