"""The three named micro-benchmarks (Sect. 4.2).

A :class:`MicroBenchmark` binds a name, a distribution pattern and a
human description; :func:`get_benchmark` resolves the names used by the
CLI and the harness (``MR-AVG``, ``MR-RAND``, ``MR-SKEW``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.core.config import (
    BenchmarkConfig,
    PATTERN_AVG,
    PATTERN_RAND,
    PATTERN_SKEW,
    PATTERN_SKEW_SPLIT,
    PATTERN_ZIPF,
)


@dataclass(frozen=True)
class MicroBenchmark:
    """A named benchmark: a distribution pattern plus documentation."""

    name: str
    pattern: str
    description: str

    def configure(
        self, base: Optional[BenchmarkConfig] = None, **overrides: object
    ) -> BenchmarkConfig:
        """Produce a :class:`BenchmarkConfig` with this pattern applied."""
        if base is None:
            base = BenchmarkConfig(pattern=self.pattern, **overrides)  # type: ignore[arg-type]
        else:
            base = replace(base, pattern=self.pattern, **overrides)  # type: ignore[arg-type]
        return base


MR_AVG = MicroBenchmark(
    name="MR-AVG",
    pattern=PATTERN_AVG,
    description=(
        "Average distribution: intermediate pairs spread round-robin so "
        "every reducer receives the same count — the fair-comparison "
        "baseline across networks."
    ),
)

MR_RAND = MicroBenchmark(
    name="MR-RAND",
    pattern=PATTERN_RAND,
    description=(
        "Random distribution: reducer chosen pseudo-randomly per pair "
        "with a fixed seed; close to even, with natural jitter."
    ),
)

MR_SKEW = MicroBenchmark(
    name="MR-SKEW",
    pattern=PATTERN_SKEW,
    description=(
        "Skewed distribution: 50% of pairs to reducer 0, 25% of the "
        "remainder to reducer 1, 12.5% of the remaining to reducer 2, "
        "rest random — the straggler-reducer stress test."
    ),
)

MR_ZIPF = MicroBenchmark(
    name="MR-ZIPF",
    pattern=PATTERN_ZIPF,
    description=(
        "Zipf distribution (extension): reducer r receives pairs with "
        "probability ~ 1/(r+1) — the real-world skew of word counts "
        "and power-law datasets, beyond MR-SKEW's fixed head."
    ),
)

MR_SKEW_SPLIT = MicroBenchmark(
    name="MR-SKEW-SPLIT",
    pattern=PATTERN_SKEW_SPLIT,
    description=(
        "Skewed distribution with key-splitting mitigation (extension): "
        "the MR-SKEW draw, but the hot partition fans out over the "
        "least-loaded reducers — the paper's 'alternative techniques "
        "that can mitigate load imbalances', made measurable."
    ),
)

#: The paper's three micro-benchmarks.
ALL_BENCHMARKS = (MR_AVG, MR_RAND, MR_SKEW)
#: Including this reproduction's extensions.
EXTENDED_BENCHMARKS = ALL_BENCHMARKS + (MR_ZIPF, MR_SKEW_SPLIT)

_BY_NAME: Dict[str, MicroBenchmark] = {}
for _bench in EXTENDED_BENCHMARKS:
    _BY_NAME[_bench.name] = _bench
    _BY_NAME[_bench.name.lower()] = _bench
    _BY_NAME[_bench.pattern] = _bench


def get_benchmark(name: str) -> MicroBenchmark:
    """Resolve ``MR-AVG``/``mr-avg``/``avg`` (etc.) to a benchmark."""
    try:
        return _BY_NAME[name if name in _BY_NAME else name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown micro-benchmark {name!r}; "
            f"known: {sorted(b.name for b in EXTENDED_BENCHMARKS)}"
        ) from None
